(* Tests for the tka serve daemon layer (Tka_serve): the framing must
   round-trip arbitrary bytes, wire garbage must come back as
   structured errors rather than crashes, concurrent sessions must
   produce results bit-identical to a one-shot run at any jobs count,
   admission control must reject (not queue unboundedly) under
   pressure, and a second tenant on the same design must hit the
   shared victim cache warm. *)

module N = Tka_circuit.Netlist
module Nf = Tka_circuit.Netlist_format
module Topo = Tka_circuit.Topo
module B = Tka_layout.Benchmarks
module Pool = Tka_parallel.Pool
module J = Tka_obs.Jsonx
module Metrics = Tka_obs.Metrics
module Analyzer = Tka_incr.Analyzer
module Framing = Tka_serve.Framing
module Proto = Tka_serve.Proto
module Registry = Tka_serve.Registry
module Admission = Tka_serve.Admission
module Session = Tka_serve.Session
module Server = Tka_serve.Server
module Client = Tka_serve.Client

let lookup = Tka_cell.Default_lib.find
let tiny_body = Nf.print (B.tiny ())

let at_jobs jobs f =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) f

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

(* Feed raw bytes to the frame reader via a temp file. *)
let with_reader content f =
  let path = Filename.temp_file "tka_serve_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc content);
      In_channel.with_open_bin path f)

let frame_of s = Printf.sprintf "%d\n%s\n" (String.length s) s

let test_framing_roundtrip () =
  List.iter
    (fun payload ->
      with_reader (frame_of payload) (fun ic ->
          match Framing.read ic with
          | Ok got ->
            Alcotest.(check string) "payload survives framing" payload got
          | Error e -> Alcotest.failf "framing error: %s" (Framing.error_to_string e)))
    [
      "";
      "{}";
      "{\"method\":\"ping\"}";
      "line one\nline two\n\nline four";
      "nul \000 byte and high \xff\xfe bytes";
      String.make 100_000 'x';
    ]

let test_framing_stream () =
  (* several frames back-to-back on one stream, then a clean Eof *)
  let payloads = [ "a"; ""; "with\nnewline"; "{\"k\":1}" ] in
  with_reader
    (String.concat "" (List.map frame_of payloads))
    (fun ic ->
      List.iter
        (fun expected ->
          match Framing.read ic with
          | Ok got -> Alcotest.(check string) "frame in order" expected got
          | Error e ->
            Alcotest.failf "framing error: %s" (Framing.error_to_string e))
        payloads;
      match Framing.read ic with
      | Error Framing.Eof -> ()
      | Ok s -> Alcotest.failf "phantom frame %S after stream end" s
      | Error e ->
        Alcotest.failf "expected Eof, got %s" (Framing.error_to_string e))

let test_framing_garbage () =
  let expect name content check =
    with_reader content (fun ic ->
        match Framing.read ic with
        | Ok s -> Alcotest.failf "%s: accepted as %S" name s
        | Error e ->
          Alcotest.(check bool)
            (name ^ " rejected as expected")
            true (check e))
  in
  expect "non-numeric prefix" "garbage\n{}\n" (function
    | Framing.Malformed _ -> true
    | _ -> false);
  expect "negative length" "-4\nabcd\n" (function
    | Framing.Malformed _ -> true
    | _ -> false);
  expect "truncated payload" "10\nabc" (function
    | Framing.Malformed _ -> true
    | _ -> false);
  expect "missing terminator" "3\nabcX" (function
    | Framing.Malformed _ -> true
    | _ -> false);
  expect "eof mid-prefix" "12" (function
    | Framing.Malformed _ -> true
    | _ -> false);
  with_reader "" (fun ic ->
      match Framing.read ic with
      | Error Framing.Eof -> ()
      | _ -> Alcotest.fail "empty stream must be a clean Eof");
  with_reader "1000\nxxxx\n" (fun ic ->
      match Framing.read ~max_len:16 ic with
      | Error (Framing.Oversized { declared = 1000; limit = 16 }) -> ()
      | Error e ->
        Alcotest.failf "expected Oversized, got %s" (Framing.error_to_string e)
      | Ok _ -> Alcotest.fail "oversized frame accepted")

(* A callee that fails with EINTR a few times before succeeding: the
   retry helper must reissue it transparently, for both the Unix and
   the buffered-channel spelling of the error, and must not swallow
   anything else. *)
let test_retry_eintr () =
  let module Retry = Tka_serve.Retry in
  let flaky exn n =
    let left = ref n in
    fun () ->
      if !left > 0 then begin
        decr left;
        raise exn
      end
      else 42
  in
  Alcotest.(check int)
    "retries Unix EINTR" 42
    (Retry.eintr (flaky (Unix.Unix_error (Unix.EINTR, "read", "")) 3));
  Alcotest.(check int)
    "retries the Sys_error spelling" 42
    (Retry.eintr (flaky (Sys_error "my.sock: Interrupted system call") 3));
  Alcotest.(check bool)
    "other Unix errors pass through" true
    (try
       ignore (Retry.eintr (flaky (Unix.Unix_error (Unix.EPIPE, "write", "")) 1));
       false
     with Unix.Unix_error (Unix.EPIPE, _, _) -> true);
  Alcotest.(check bool)
    "other Sys_errors pass through" true
    (try
       ignore (Retry.eintr (flaky (Sys_error "Broken pipe") 1));
       false
     with Sys_error _ -> true)

(* qcheck: an arbitrary byte string — embedded newlines, NULs, high
   bytes — survives write-then-read bit-exactly, including when
   several frames share a stream. *)
let prop_framing_roundtrip =
  QCheck.Test.make ~count:200 ~name:"framing round-trips arbitrary bytes"
    QCheck.(pair string string)
    (fun (a, b) ->
      let path = Filename.temp_file "tka_serve_qc" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Out_channel.with_open_bin path (fun oc ->
              Framing.write oc a;
              Framing.write oc b);
          In_channel.with_open_bin path (fun ic ->
              Framing.read ic = Ok a
              && Framing.read ic = Ok b
              && Framing.read ic = Error Framing.Eof)))

(* ------------------------------------------------------------------ *)
(* Proto                                                              *)
(* ------------------------------------------------------------------ *)

let test_proto_codes () =
  List.iter
    (fun c ->
      match Proto.code_of_string (Proto.code_to_string c) with
      | Some c' ->
        Alcotest.(check bool) "code round-trips" true (c = c')
      | None -> Alcotest.failf "code %s did not round-trip" (Proto.code_to_string c))
    [
      Proto.Bad_request;
      Proto.Parse_failed;
      Proto.No_design;
      Proto.Overloaded;
      Proto.Timeout;
      Proto.Shutting_down;
      Proto.Internal;
    ];
  Alcotest.(check bool)
    "unknown code string rejected" true
    (Proto.code_of_string "nope" = None);
  (match Proto.request_of_json (J.List []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object request accepted");
  match Proto.request_of_json (J.Obj [ ("id", J.Int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request without method accepted"

(* ------------------------------------------------------------------ *)
(* In-process RPC helpers                                             *)
(* ------------------------------------------------------------------ *)

let make_server ?max_inflight ?max_queue ?deadline_s () =
  Server.create ?max_inflight ?max_queue ?deadline_s ~default_k:4 ~lookup ()

let session srv = Session.create ~registry:(Server.registry srv) ~lookup ~default_k:4

let rpc srv sess meth params =
  let payload =
    J.to_string
      (J.Obj [ ("id", J.Int 1); ("method", J.Str meth); ("params", params) ])
  in
  J.of_string (Server.handle_one srv sess payload)

let result_exn name reply =
  match Proto.response_result reply with
  | Ok r -> r
  | Error (code, msg) ->
    Alcotest.failf "%s failed (%s): %s" name (Proto.code_to_string code) msg

let error_code name reply =
  match Proto.response_result reply with
  | Error (code, _) -> code
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" name

let int_member name j =
  match J.member name j with
  | Some (J.Int i) -> i
  | _ -> Alcotest.failf "missing int field %S in %s" name (J.to_string j)

let float_member name j =
  match J.member name j with
  | Some (J.Float f) -> f
  | Some (J.Int i) -> float_of_int i
  | _ -> Alcotest.failf "missing float field %S in %s" name (J.to_string j)

let load_tiny ?(k = 4) srv sess =
  ignore
    (result_exn "load"
       (rpc srv sess "load"
          (J.Obj [ ("netlist", J.Str tiny_body); ("k", J.Int k) ])))

(* The wall clock and the shared-cache hit split depend on who ran
   first, not on what was computed; strip them before comparing runs
   for bit-identity. *)
let strip_volatile = function
  | J.Obj kvs ->
    J.Obj
      (List.filter
         (fun (k, _) ->
           not (List.mem k [ "elapsed_s"; "cache_hits"; "cache_misses" ]))
         kvs)
  | j -> j

(* ------------------------------------------------------------------ *)
(* Dispatch errors are structured, never crashes                      *)
(* ------------------------------------------------------------------ *)

let test_dispatch_errors () =
  let srv = make_server () in
  let sess = session srv in
  (* raw garbage payload: not JSON at all *)
  let reply = J.of_string (Server.handle_one srv sess "not json at all {") in
  Alcotest.(check string)
    "non-JSON payload -> bad_request" "bad_request"
    (Proto.code_to_string (error_code "garbage" reply));
  (* valid JSON, invalid envelope *)
  let reply = J.of_string (Server.handle_one srv sess "[1,2,3]") in
  Alcotest.(check string)
    "non-envelope payload -> bad_request" "bad_request"
    (Proto.code_to_string (error_code "array" reply));
  Alcotest.(check string)
    "unknown method -> bad_request" "bad_request"
    (Proto.code_to_string
       (error_code "unknown" (rpc srv sess "frobnicate" (J.Obj []))));
  Alcotest.(check string)
    "analyze before load -> no_design" "no_design"
    (Proto.code_to_string
       (error_code "analyze" (rpc srv sess "analyze" (J.Obj []))));
  Alcotest.(check string)
    "bad netlist -> parse_failed" "parse_failed"
    (Proto.code_to_string
       (error_code "load"
          (rpc srv sess "load" (J.Obj [ ("netlist", J.Str "not a netlist") ]))));
  load_tiny srv sess;
  Alcotest.(check string)
    "out-of-range edit -> bad_request" "bad_request"
    (Proto.code_to_string
       (error_code "whatif"
          (rpc srv sess "whatif"
             (J.Obj
                [
                  ( "edits",
                    J.List
                      [
                        J.Obj
                          [
                            ("op", J.Str "remove_coupling");
                            ("coupling", J.Int 99_999);
                          ];
                      ] );
                ]))));
  (* the id is echoed even on errors *)
  let payload =
    J.to_string (J.Obj [ ("id", J.Str "abc"); ("method", J.Str "nope") ])
  in
  let reply = J.of_string (Server.handle_one srv sess payload) in
  Alcotest.(check bool)
    "error reply echoes the request id" true
    (J.member "id" reply = Some (J.Str "abc"))

let test_batch () =
  let srv = make_server () in
  let sess = session srv in
  let sub meth = J.Obj [ ("id", J.Int 9); ("method", J.Str meth) ] in
  let result =
    result_exn "batch"
      (rpc srv sess "batch"
         (J.Obj [ ("requests", J.List [ sub "ping"; sub "frobnicate" ]) ]))
  in
  (match J.member "replies" result with
  | Some (J.List [ first; second ]) ->
    Alcotest.(check bool)
      "first sub-reply ok" true
      (J.member "ok" first = Some (J.Bool true));
    Alcotest.(check string)
      "second sub-reply bad_request" "bad_request"
      (Proto.code_to_string (error_code "sub" second))
  | _ -> Alcotest.failf "unexpected batch result %s" (J.to_string result));
  (* nesting is rejected per sub-request: the outer envelope is still
     ok, the inner reply carries the error *)
  let nested =
    result_exn "nested batch"
      (rpc srv sess "batch" (J.Obj [ ("requests", J.List [ sub "batch" ]) ]))
  in
  match J.member "replies" nested with
  | Some (J.List [ inner ]) ->
    Alcotest.(check string)
      "nested batch sub-reply rejected" "bad_request"
      (Proto.code_to_string (error_code "nested" inner))
  | _ -> Alcotest.failf "unexpected nested batch result %s" (J.to_string nested)

(* ------------------------------------------------------------------ *)
(* Determinism: daemon sessions vs one-shot, jobs 1 vs 4              *)
(* ------------------------------------------------------------------ *)

let test_determinism_across_jobs () =
  (* one-shot reference: a private analyzer, no daemon *)
  let reference =
    at_jobs 1 (fun () ->
        let nl = B.tiny () in
        let elim, _ = Analyzer.run (Analyzer.create ~k:4 ()) (Topo.create nl) in
        elim.Tka_topk.Elimination.result.Tka_topk.Engine.res_noisy_delay)
  in
  let analyze_stripped srv sess =
    strip_volatile (result_exn "analyze" (rpc srv sess "analyze" (J.Obj [])))
  in
  let baseline =
    at_jobs 1 (fun () ->
        let srv = make_server () in
        let sess = session srv in
        load_tiny srv sess;
        analyze_stripped srv sess)
  in
  Alcotest.(check bool)
    "daemon all-aggressor delay bit-equals one-shot" true
    (float_member "all_aggressor_delay_ns" baseline = reference);
  (* four concurrent sessions on a 4-way pool, one shared server *)
  at_jobs 4 (fun () ->
      let srv = make_server () in
      let results = Array.make 4 J.Null in
      let threads =
        Array.init 4 (fun i ->
            Thread.create
              (fun i ->
                let sess = session srv in
                load_tiny srv sess;
                results.(i) <- analyze_stripped srv sess)
              i)
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          Alcotest.(check string)
            (Printf.sprintf "session %d matches jobs-1 baseline" i)
            (J.to_string baseline) (J.to_string r))
        results)

(* ------------------------------------------------------------------ *)
(* Shared victim cache across sessions                                *)
(* ------------------------------------------------------------------ *)

let test_warm_cache_cross_session () =
  let srv = make_server () in
  let s1 = session srv in
  load_tiny srv s1;
  let r1 = result_exn "analyze s1" (rpc srv s1 "analyze" (J.Obj [])) in
  Alcotest.(check bool)
    "first tenant populates the cache" true
    (int_member "cache_misses" r1 > 0);
  (* a second session loading the same body lands on the same
     fingerprint, so its first analysis is all hits *)
  let s2 = session srv in
  load_tiny srv s2;
  let r2 = result_exn "analyze s2" (rpc srv s2 "analyze" (J.Obj [])) in
  Alcotest.(check int) "second tenant misses nothing" 0 (int_member "cache_misses" r2);
  Alcotest.(check int)
    "second tenant hits every victim"
    (int_member "cache_misses" r1 + int_member "cache_hits" r1)
    (int_member "cache_hits" r2);
  Alcotest.(check string)
    "identical results either way"
    (J.to_string (strip_volatile r1))
    (J.to_string (strip_volatile r2));
  let stats = Registry.stats_json (Server.registry srv) in
  Alcotest.(check int) "one design in the registry" 1 (int_member "designs" stats);
  Alcotest.(check bool)
    "both sessions attached" true
    (int_member "attaches" stats >= 2)

let test_whatif_does_not_advance () =
  let srv = make_server () in
  let sess = session srv in
  load_tiny srv sess;
  let before =
    strip_volatile (result_exn "analyze" (rpc srv sess "analyze" (J.Obj [])))
  in
  let whatif =
    result_exn "whatif"
      (rpc srv sess "whatif"
         (J.Obj
            [
              ( "edits",
                J.List
                  [
                    J.Obj
                      [
                        ("op", J.Str "scale_coupling");
                        ("coupling", J.Int 0);
                        ("factor", J.Float 0.5);
                      ];
                  ] );
            ]))
  in
  Alcotest.(check bool)
    "whatif reports dirty nets" true
    (int_member "dirty_nets" whatif > 0);
  let after =
    strip_volatile (result_exn "analyze" (rpc srv sess "analyze" (J.Obj [])))
  in
  Alcotest.(check string)
    "session design unchanged by whatif" (J.to_string before)
    (J.to_string after)

(* [tiny] has no beneficial elimination set, so eco's advancing path
   needs a real benchmark; i1 is the smallest of the paper's suite. *)
let test_eco_advances () =
  let srv = make_server () in
  let sess = session srv in
  let body = Nf.print (Option.get (B.by_name "i1")) in
  ignore
    (result_exn "load i1"
       (rpc srv sess "load" (J.Obj [ ("netlist", J.Str body); ("k", J.Int 4) ])));
  let eco =
    result_exn "eco" (rpc srv sess "eco" (J.Obj [ ("fix_k", J.Int 1) ]))
  in
  let noisy = float_member "delay_noisy_ns" eco in
  let fixed = float_member "delay_fixed_ns" eco in
  Alcotest.(check bool) "eco removes at least one coupling" true
    (int_member "edits" eco > 0
    &&
    match J.member "set" eco with
    | Some (J.List (_ :: _)) -> true
    | _ -> false);
  Alcotest.(check bool) "fix does not worsen the delay" true (fixed <= noisy);
  (* the session advanced: a fresh analyze sees the fixed design *)
  let after = result_exn "analyze" (rpc srv sess "analyze" (J.Obj [])) in
  Alcotest.(check bool)
    "post-eco analysis matches the committed design" true
    (float_member "all_aggressor_delay_ns" after = fixed)

(* The eco reply names the rule that produced its fix set — a silent
   dual_set fallback is indistinguishable from an elimination fix
   otherwise. *)
let test_eco_rule_surfaced () =
  let srv = make_server () in
  let sess = session srv in
  let body = Nf.print (Option.get (B.by_name "i1")) in
  ignore
    (result_exn "load i1"
       (rpc srv sess "load" (J.Obj [ ("netlist", J.Str body); ("k", J.Int 4) ])));
  let eco =
    result_exn "eco" (rpc srv sess "eco" (J.Obj [ ("fix_k", J.Int 1) ]))
  in
  match J.member "rule" eco with
  | Some (J.Str rule) ->
    Alcotest.(check bool)
      "rule is a known name" true
      (List.mem rule [ "elim"; "dual"; "none" ]);
    if int_member "edits" eco > 0 then
      Alcotest.(check bool) "an applied fix names its rule" true (rule <> "none")
  | _ -> Alcotest.fail "eco reply must carry the chosen rule"

(* The filter mode rides every analysis RPC: accepted names are echoed
   back, the default is "none", "none" results are bit-identical to an
   unfiltered request, and an unknown name is a bad_request (the error
   code set stays closed). *)
let test_filter_rpc () =
  let srv = make_server () in
  let sess = session srv in
  load_tiny srv sess;
  let analyze params =
    result_exn "analyze" (rpc srv sess "analyze" (J.Obj params))
  in
  let filter_of j =
    match J.member "filter" j with
    | Some (J.Str s) -> s
    | _ -> Alcotest.failf "no filter field in %s" (J.to_string j)
  in
  let default = analyze [] in
  Alcotest.(check string) "default filter is none" "none" (filter_of default);
  List.iter
    (fun name ->
      let r = analyze [ ("filter", J.Str name) ] in
      Alcotest.(check string)
        (Printf.sprintf "filter %s echoed" name)
        name (filter_of r))
    [ "none"; "window"; "logic" ];
  Alcotest.(check string)
    "explicit none bit-identical to default"
    (J.to_string (strip_volatile default))
    (J.to_string (strip_volatile (analyze [ ("filter", J.Str "none") ])));
  List.iter
    (fun (meth, params) ->
      Alcotest.(check string)
        (Printf.sprintf "%s with unknown filter -> bad_request" meth)
        "bad_request"
        (Proto.code_to_string
           (error_code meth (rpc srv sess meth (J.Obj params)))))
    [
      ("analyze", [ ("filter", J.Str "aggressive") ]);
      ("analyze", [ ("filter", J.Int 2) ]);
      ("whatif", [ ("edits", J.List []); ("filter", J.Str "windows") ]);
      ( "repair",
        [ ("budget", J.Int 1); ("dry_run", J.Bool true); ("filter", J.Str "") ]
      );
    ]

let test_repair_rpc () =
  let srv = make_server () in
  let sess = session srv in
  let body = Nf.print (Option.get (B.by_name "i1")) in
  ignore
    (result_exn "load i1"
       (rpc srv sess "load" (J.Obj [ ("netlist", J.Str body); ("k", J.Int 4) ])));
  let info () = result_exn "info" (rpc srv sess "info" (J.Obj [])) in
  let before = info () in
  (* dry run: full loop, nothing committed *)
  let dry =
    result_exn "repair dry_run"
      (rpc srv sess "repair"
         (J.Obj
            [
              ("budget", J.Int 2);
              ("recover", J.Float 0.25);
              ("dry_run", J.Bool true);
            ]))
  in
  Alcotest.(check bool)
    "dry run is not committed" true
    (J.member "committed" dry = Some (J.Bool false));
  Alcotest.(check string)
    "session design unchanged by a dry run" (J.to_string before)
    (J.to_string (info ()));
  (* the real run commits and a fresh analyze sees the repaired design *)
  let rep =
    result_exn "repair"
      (rpc srv sess "repair"
         (J.Obj [ ("budget", J.Int 2); ("recover", J.Float 0.25) ]))
  in
  Alcotest.(check bool)
    "repair applied at least one edit" true
    (int_member "edits_applied" rep > 0);
  Alcotest.(check bool)
    "an advancing repair is committed" true
    (J.member "committed" rep = Some (J.Bool true));
  Alcotest.(check bool)
    "repair does not worsen the delay" true
    (float_member "final_delay_ns" rep
    <= float_member "initial_delay_ns" rep +. 1e-9);
  let an = result_exn "analyze" (rpc srv sess "analyze" (J.Obj [])) in
  Alcotest.(check (float 0.))
    "post-repair analysis matches the committed design"
    (float_member "final_delay_ns" rep)
    (float_member "all_aggressor_delay_ns" an);
  (* parameter validation is structured *)
  Alcotest.(check string)
    "bad fix_k -> bad_request" "bad_request"
    (Proto.code_to_string
       (error_code "repair"
          (rpc srv sess "repair" (J.Obj [ ("fix_k", J.Int 99) ]))))

(* ------------------------------------------------------------------ *)
(* Admission control                                                  *)
(* ------------------------------------------------------------------ *)

(* A slow ping holds the single admission slot; with a zero-length
   queue the second request must come back overloaded, deterministically. *)
let test_admission_overload () =
  let srv = make_server ~max_inflight:1 ~max_queue:0 () in
  let sess = session srv in
  let slow =
    Thread.create
      (fun () -> rpc srv (session srv) "ping" (J.Obj [ ("delay_s", J.Float 0.3) ]))
      ()
  in
  Thread.delay 0.1;
  let reply = rpc srv sess "ping" (J.Obj [ ("delay_s", J.Float 0.0) ]) in
  Alcotest.(check string)
    "second request rejected" "overloaded"
    (Proto.code_to_string (error_code "ping" reply));
  ignore (result_exn "slow ping" (Thread.join slow; rpc srv sess "ping" (J.Obj [])))

let test_admission_timeout () =
  let srv = make_server ~max_inflight:1 ~max_queue:4 ~deadline_s:0.05 () in
  let slow =
    Thread.create
      (fun () -> rpc srv (session srv) "ping" (J.Obj [ ("delay_s", J.Float 0.4) ]))
      ()
  in
  Thread.delay 0.1;
  (* fits in the queue, but the 50 ms deadline expires while the slow
     ping still holds the slot *)
  let reply = rpc srv (session srv) "ping" (J.Obj [ ("delay_s", J.Float 0.0) ]) in
  Alcotest.(check string)
    "queued past deadline -> timeout" "timeout"
    (Proto.code_to_string (error_code "ping" reply));
  Thread.join slow

let test_admission_unit () =
  let adm = Admission.create ~max_inflight:2 ~max_queue:0 () in
  Alcotest.(check int) "idle: nothing inflight" 0 (Admission.inflight adm);
  (match Admission.run adm (fun () -> 41 + 1) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "admitted work must run");
  Alcotest.(check int) "slot released" 0 (Admission.inflight adm);
  (* exceptions release the slot too *)
  (try ignore (Admission.run adm (fun () -> failwith "boom")) with Failure _ -> ());
  Alcotest.(check int) "slot released after raise" 0 (Admission.inflight adm)

(* ------------------------------------------------------------------ *)
(* Shutdown and metrics                                               *)
(* ------------------------------------------------------------------ *)

let test_shutdown () =
  let srv = make_server () in
  let sess = session srv in
  load_tiny srv sess;
  ignore (result_exn "shutdown" (rpc srv sess "shutdown" (J.Obj [])));
  Alcotest.(check bool) "server is stopping" true (Server.stopping srv);
  Alcotest.(check string)
    "analysis after shutdown -> shutting_down" "shutting_down"
    (Proto.code_to_string
       (error_code "analyze" (rpc srv sess "analyze" (J.Obj []))))

let test_metrics_rpc () =
  Metrics.with_enabled true (fun () ->
      let srv = make_server () in
      let sess = session srv in
      let result = result_exn "metrics" (rpc srv sess "metrics" (J.Obj [])) in
      (match J.member "format" result with
      | Some (J.Str "prometheus") -> ()
      | _ -> Alcotest.fail "metrics result must declare the prometheus format");
      let body =
        match J.member "body" result with
        | Some (J.Str b) -> b
        | _ -> Alcotest.fail "metrics result must carry a text body"
      in
      let contains sub =
        let n = String.length sub and m = String.length body in
        let rec go i = i + n <= m && (String.sub body i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        "exposes the request counter" true
        (contains "# TYPE serve_requests counter");
      let stats = result_exn "stats" (rpc srv sess "stats" (J.Obj [])) in
      Alcotest.(check bool)
        "stats counts this connection's requests" true
        (int_member "requests" stats >= 2))

(* ------------------------------------------------------------------ *)
(* Full socket round-trip                                             *)
(* ------------------------------------------------------------------ *)

let with_daemon f =
  let dir = Filename.temp_file "tka_serve_sock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "tka.sock" in
  let srv = make_server () in
  let listener = Server.listen_unix sock in
  let thread = Thread.create (fun () -> Server.serve srv ~listeners:[ listener ]) () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join thread;
      (try Sys.remove sock with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f srv sock)

let test_socket_roundtrip () =
  with_daemon (fun _srv sock ->
      let c = Client.connect_unix sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.call c ~meth:"ping" () with
          | Ok _ -> ()
          | Error (_, m) -> Alcotest.failf "ping over socket failed: %s" m);
          (match
             Client.call c ~meth:"load"
               ~params:(J.Obj [ ("netlist", J.Str tiny_body); ("k", J.Int 4) ])
               ()
           with
          | Ok r ->
            Alcotest.(check bool)
              "load over socket sees couplings" true
              (int_member "couplings" r > 0)
          | Error (_, m) -> Alcotest.failf "load over socket failed: %s" m);
          match Client.call c ~meth:"analyze" () with
          | Ok r ->
            Alcotest.(check bool)
              "analyze over socket returns per_k" true
              (match J.member "per_k" r with
              | Some (J.List (_ :: _)) -> true
              | _ -> false)
          | Error (_, m) -> Alcotest.failf "analyze over socket failed: %s" m))

let test_socket_garbage () =
  with_daemon (fun _srv sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* not a frame at all: the daemon must answer with a
             structured bad_request and close, not crash *)
          output_string oc "this is not a frame\n";
          flush oc;
          (match Framing.read ic with
          | Ok payload ->
            let reply = J.of_string payload in
            Alcotest.(check string)
              "garbage answered with bad_request" "bad_request"
              (Proto.code_to_string (error_code "garbage" reply))
          | Error e ->
            Alcotest.failf "no structured reply to garbage: %s"
              (Framing.error_to_string e));
          match Framing.read ic with
          | Error Framing.Eof -> ()
          | Ok _ -> Alcotest.fail "connection must close after a framing error"
          | Error _ -> () (* reset also acceptable: the peer is gone *)));
  (* the daemon survived: a fresh well-formed connection still works *)
  with_daemon (fun _srv sock ->
      let c = Client.connect_unix sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.call c ~meth:"ping" () with
          | Ok _ -> ()
          | Error (_, m) -> Alcotest.failf "ping after garbage failed: %s" m))

(* Regression: a client that sends a request and closes without
   reading the reply used to kill the whole daemon — the reply write
   hit a dead peer and the resulting SIGPIPE (default disposition:
   terminate) took every other connection down with it. Now the EPIPE
   is scoped to that one connection. *)
let test_socket_disconnect_mid_reply () =
  with_daemon (fun _srv sock ->
      for _ = 1 to 3 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let oc = Unix.out_channel_of_descr fd in
        (* a request with a sizable reply, then vanish before reading it *)
        Framing.write oc
          (J.to_string
             (J.Obj
                [
                  ("id", J.Int 1);
                  ("method", J.Str "load");
                  ( "params",
                    J.Obj [ ("netlist", J.Str tiny_body); ("k", J.Int 4) ] );
                ]));
        Unix.close fd;
        Thread.delay 0.05
      done;
      (* the daemon survived every abandoned connection *)
      let c = Client.connect_unix sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.call c ~meth:"ping" () with
          | Ok _ -> ()
          | Error (_, m) ->
            Alcotest.failf "ping after mid-reply disconnects failed: %s" m))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "tka_serve"
    [
      ( "framing",
        [
          Alcotest.test_case "round-trip" `Quick test_framing_roundtrip;
          Alcotest.test_case "stream" `Quick test_framing_stream;
          Alcotest.test_case "garbage" `Quick test_framing_garbage;
          Alcotest.test_case "eintr retry" `Quick test_retry_eintr;
        ] );
      qsuite "framing-qcheck" [ prop_framing_roundtrip ];
      ("proto", [ Alcotest.test_case "codes" `Quick test_proto_codes ]);
      ( "dispatch",
        [
          Alcotest.test_case "errors" `Quick test_dispatch_errors;
          Alcotest.test_case "batch" `Quick test_batch;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "metrics" `Quick test_metrics_rpc;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "determinism across jobs" `Quick
            test_determinism_across_jobs;
          Alcotest.test_case "warm cache cross-session" `Quick
            test_warm_cache_cross_session;
          Alcotest.test_case "whatif does not advance" `Quick
            test_whatif_does_not_advance;
          Alcotest.test_case "eco advances" `Quick test_eco_advances;
          Alcotest.test_case "eco rule surfaced" `Quick test_eco_rule_surfaced;
          Alcotest.test_case "repair rpc" `Quick test_repair_rpc;
          Alcotest.test_case "filter rpc" `Quick test_filter_rpc;
        ] );
      ( "admission",
        [
          Alcotest.test_case "unit" `Quick test_admission_unit;
          Alcotest.test_case "overload" `Quick test_admission_overload;
          Alcotest.test_case "timeout" `Quick test_admission_timeout;
        ] );
      ( "socket",
        [
          Alcotest.test_case "round-trip" `Quick test_socket_roundtrip;
          Alcotest.test_case "garbage" `Quick test_socket_garbage;
          Alcotest.test_case "disconnect mid-reply" `Quick
            test_socket_disconnect_mid_reply;
        ] );
    ]
