(* Tests for the exact piecewise-linear algebra, the foundation of all
   envelope arithmetic. *)

module Pwl = Tka_waveform.Pwl
module Interval = Tka_util.Interval

let check_f = Alcotest.(check (float 1e-9))

let ramp = Pwl.create [ (0., 0.); (1., 1.) ]
let bump = Pwl.create [ (0., 0.); (1., 1.); (2., 0.) ]

(* ------------------------------------------------------------------ *)
(* Construction / evaluation                                          *)
(* ------------------------------------------------------------------ *)

let test_create_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pwl.create []);
       false
     with Invalid_argument _ -> true)

let test_create_unsorted () =
  let f = Pwl.create [ (2., 4.); (0., 0.); (1., 2.) ] in
  check_f "sorted eval" 2. (Pwl.eval f 1.)

let test_create_conflicting_duplicate () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pwl.create [ (0., 0.); (0., 1.) ]);
       false
     with Invalid_argument _ -> true)

let test_create_agreeing_duplicate () =
  let f = Pwl.create [ (0., 1.); (0., 1.); (2., 3.) ] in
  check_f "merged" 2. (Pwl.eval f 1.)

let test_collinear_simplified () =
  let f = Pwl.create [ (0., 0.); (1., 1.); (2., 2.); (3., 3.) ] in
  Alcotest.(check int) "two breakpoints" 2 (List.length (Pwl.breakpoints f))

let test_eval_interpolation () =
  check_f "midpoint" 0.5 (Pwl.eval ramp 0.5);
  check_f "quarter" 0.25 (Pwl.eval ramp 0.25)

let test_eval_extension () =
  check_f "left constant" 0. (Pwl.eval ramp (-100.));
  check_f "right constant" 1. (Pwl.eval ramp 100.)

let test_constant () =
  let c = Pwl.constant 3.5 in
  check_f "anywhere" 3.5 (Pwl.eval c 123.);
  Alcotest.(check bool) "is_constant" true (Pwl.is_constant c);
  Alcotest.(check bool) "ramp not constant" false (Pwl.is_constant ramp)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                         *)
(* ------------------------------------------------------------------ *)

let test_add_exact () =
  let s = Pwl.add ramp bump in
  check_f "at 0.5" 1. (Pwl.eval s 0.5);
  check_f "at 1" 2. (Pwl.eval s 1.);
  check_f "at 1.5" 1.5 (Pwl.eval s 1.5);
  check_f "at 3" 1. (Pwl.eval s 3.)

let test_sub_self_zero () =
  let z = Pwl.sub bump bump in
  check_f "max" 0. (Pwl.max_value z);
  check_f "min" 0. (Pwl.min_value z)

let test_scale_neg_shift () =
  let f = Pwl.scale 2. ramp in
  check_f "scaled" 1. (Pwl.eval f 0.5);
  let g = Pwl.neg ramp in
  check_f "neg" (-0.5) (Pwl.eval g 0.5);
  let h = Pwl.shift_x 1. ramp in
  check_f "shifted x" 0. (Pwl.eval h 1.);
  check_f "shifted x mid" 0.5 (Pwl.eval h 1.5);
  let i = Pwl.shift_y 1. ramp in
  check_f "shifted y" 1.5 (Pwl.eval i 0.5)

let test_sum_list () =
  let s = Pwl.sum [ ramp; ramp; ramp ] in
  check_f "triple" 1.5 (Pwl.eval s 0.5);
  check_f "empty sum is zero" 0. (Pwl.eval (Pwl.sum []) 0.)

let test_max2_crossing_inserted () =
  let a = Pwl.create [ (0., 0.); (2., 2.) ] in
  let b = Pwl.create [ (0., 2.); (2., 0.) ] in
  let m = Pwl.max2 a b in
  (* crossing at x=1, y=1 *)
  check_f "at crossing" 1. (Pwl.eval m 1.);
  check_f "left" 2. (Pwl.eval m 0.);
  check_f "right" 2. (Pwl.eval m 2.);
  check_f "between" 1.5 (Pwl.eval m 0.5)

let test_min2 () =
  let a = Pwl.create [ (0., 0.); (2., 2.) ] in
  let b = Pwl.create [ (0., 2.); (2., 0.) ] in
  let m = Pwl.min2 a b in
  check_f "at crossing" 1. (Pwl.eval m 1.);
  check_f "left" 0. (Pwl.eval m 0.);
  check_f "between" 0.5 (Pwl.eval m 0.5)

let test_clip () =
  let f = Pwl.create [ (0., -1.); (2., 1.) ] in
  let c = Pwl.clip_min 0. f in
  check_f "clipped low" 0. (Pwl.eval c 0.);
  check_f "unclipped" 1. (Pwl.eval c 2.);
  check_f "at crossing" 0. (Pwl.eval c 1.);
  let d = Pwl.clip_max 0. f in
  check_f "clip max right" 0. (Pwl.eval d 2.);
  check_f "clip max left" (-1.) (Pwl.eval d 0.)

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

let test_dominates () =
  let big = Pwl.create [ (0., 0.); (1., 2.); (2., 0.) ] in
  Alcotest.(check bool) "big >= bump" true (Pwl.dominates big bump);
  Alcotest.(check bool) "bump not >= big" false (Pwl.dominates bump big);
  Alcotest.(check bool) "self" true (Pwl.dominates bump bump)

let test_dominates_crossing () =
  let a = Pwl.create [ (0., 1.); (2., 0.) ] in
  let b = Pwl.create [ (0., 0.); (2., 1.) ] in
  Alcotest.(check bool) "a not >= b" false (Pwl.dominates a b);
  Alcotest.(check bool) "b not >= a" false (Pwl.dominates b a)

let test_dominates_on_interval () =
  let a = Pwl.create [ (0., 1.); (2., 0.) ] in
  let b = Pwl.create [ (0., 0.); (2., 1.) ] in
  (* on [0, 0.5] a is above b *)
  Alcotest.(check bool) "restricted" true
    (Pwl.dominates_on (Interval.make 0. 0.5) a b);
  Alcotest.(check bool) "restricted other side" true
    (Pwl.dominates_on (Interval.make 1.5 2.) b a);
  Alcotest.(check bool) "whole fails" false
    (Pwl.dominates_on (Interval.make 0. 2.) a b)

let test_equal () =
  Alcotest.(check bool) "equal self" true (Pwl.equal bump bump);
  let bump' = Pwl.create [ (0., 0.); (0.5, 0.5); (1., 1.); (2., 0.) ] in
  Alcotest.(check bool) "collinear same function" true (Pwl.equal bump bump');
  Alcotest.(check bool) "different" false (Pwl.equal bump ramp)

(* ------------------------------------------------------------------ *)
(* Extrema, support, area                                             *)
(* ------------------------------------------------------------------ *)

let test_max_min_value () =
  check_f "max" 1. (Pwl.max_value bump);
  check_f "min" 0. (Pwl.min_value bump)

let test_max_on () =
  check_f "window max" 0.5 (Pwl.max_on (Interval.make 0. 0.5) bump);
  check_f "window over peak" 1. (Pwl.max_on (Interval.make 0.5 1.5) bump);
  check_f "min over tail" 0.5 (Pwl.min_on (Interval.make 0.5 1.5) bump)

let test_support () =
  match Pwl.support bump with
  | None -> Alcotest.fail "expected support"
  | Some i ->
    Alcotest.(check bool) "contains peak" true (Interval.contains i 1.);
    Alcotest.(check bool) "zero support of zero" true (Pwl.support Pwl.zero = None)

let test_area () =
  check_f "triangle area" 1. (Pwl.area bump);
  check_f "ramp area" 0.5 (Pwl.area ramp)

let test_first_last_x () =
  check_f "first" 0. (Pwl.first_x bump);
  check_f "last" 2. (Pwl.last_x bump)

(* ------------------------------------------------------------------ *)
(* Crossings                                                          *)
(* ------------------------------------------------------------------ *)

let test_last_upcrossing_ramp () =
  match Pwl.last_upcrossing ramp 0.5 with
  | Some x -> check_f "t50" 0.5 x
  | None -> Alcotest.fail "expected crossing"

let test_last_upcrossing_dip () =
  (* rises through 0.5, dips below, rises again: last crossing counts *)
  let f = Pwl.create [ (0., 0.); (1., 1.); (2., 0.2); (3., 1.) ] in
  match Pwl.last_upcrossing f 0.5 with
  | Some x ->
    Alcotest.(check bool) "after dip" true (x > 2. && x < 3.)
  | None -> Alcotest.fail "expected crossing"

let test_last_upcrossing_none () =
  Alcotest.(check bool) "below forever" true
    (Pwl.last_upcrossing (Pwl.constant 0.) 0.5 = None);
  Alcotest.(check bool) "always above" true
    (Pwl.last_upcrossing (Pwl.constant 1.) 0.5 = None)

let test_first_upcrossing () =
  let f = Pwl.create [ (0., 0.); (1., 1.); (2., 0.2); (3., 1.) ] in
  match Pwl.first_upcrossing f 0.5 with
  | Some x -> check_f "first" 0.5 x
  | None -> Alcotest.fail "expected crossing"

let test_crossings_count () =
  let f = Pwl.create [ (0., 0.); (1., 1.); (2., 0.); (3., 1.) ] in
  Alcotest.(check int) "three crossings" 3 (List.length (Pwl.crossings f 0.5))

(* ------------------------------------------------------------------ *)
(* Unimodality and sliding max                                        *)
(* ------------------------------------------------------------------ *)

let test_unimodal () =
  Alcotest.(check bool) "bump" true (Pwl.is_unimodal bump);
  Alcotest.(check bool) "ramp" true (Pwl.is_unimodal ramp);
  let w = Pwl.create [ (0., 0.); (1., 1.); (2., 0.); (3., 1.) ] in
  Alcotest.(check bool) "double bump not" false (Pwl.is_unimodal w)

let test_sliding_max_zero_window () =
  Alcotest.(check bool) "identity" true
    (Pwl.equal (Pwl.sliding_max ~window:0. bump) bump)

let test_sliding_max_trapezoid () =
  let e = Pwl.sliding_max ~window:1.5 bump in
  (* leading edge unchanged *)
  check_f "lead" 0.5 (Pwl.eval e 0.5);
  (* flat top over [1, 2.5] *)
  check_f "top start" 1. (Pwl.eval e 1.);
  check_f "top mid" 1. (Pwl.eval e 1.7);
  check_f "top end" 1. (Pwl.eval e 2.5);
  (* trailing edge = original shifted by window *)
  check_f "tail" (Pwl.eval bump 1.6) (Pwl.eval e (1.6 +. 1.5))

let test_sliding_max_is_pointwise_max () =
  (* g(x) = max over s in [0, w] of f (x - s); the sampled reference can
     miss the exact peak by one step, so allow step-sized tolerance. *)
  let w = 0.8 in
  let e = Pwl.sliding_max ~window:w bump in
  let step_tol = (w /. 100.) +. 1e-9 in
  let samples = List.init 61 (fun i -> -0.5 +. (float_of_int i *. 0.08)) in
  List.iter
    (fun x ->
      let expect = ref neg_infinity in
      for j = 0 to 100 do
        let s = w *. float_of_int j /. 100. in
        expect := Float.max !expect (Pwl.eval bump (x -. s))
      done;
      let got = Pwl.eval e x in
      Alcotest.(check bool)
        (Printf.sprintf "at %g: got %g, sampled %g" x got !expect)
        true
        (got >= !expect -. 1e-9 && got <= !expect +. step_tol))
    samples

let test_sliding_max_rejects_bimodal () =
  let w = Pwl.create [ (0., 0.); (1., 1.); (2., 0.); (3., 1.) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pwl.sliding_max ~window:1. w);
       false
     with Invalid_argument _ -> true)

let test_sliding_max_monotone_in_window () =
  let e1 = Pwl.sliding_max ~window:0.5 bump in
  let e2 = Pwl.sliding_max ~window:1.5 bump in
  Alcotest.(check bool) "wider window dominates" true (Pwl.dominates e2 e1)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

(* Generator for random PWLs with a handful of breakpoints. *)
let pwl_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* xs = list_repeat n (float_bound_inclusive 10.) in
    let* ys = list_repeat n (float_range (-5.) 5.) in
    let pts =
      List.map2 (fun x y -> (Float.round (x *. 100.) /. 100., y)) xs ys
    in
    (* dedupe x to avoid conflicting duplicates *)
    let seen = Hashtbl.create 8 in
    let pts =
      List.filter
        (fun (x, _) ->
          if Hashtbl.mem seen x then false
          else begin
            Hashtbl.replace seen x ();
            true
          end)
        pts
    in
    return (Pwl.create pts))

let arb_pwl = QCheck.make ~print:Pwl.to_string pwl_gen

let sample_points = List.init 41 (fun i -> -2. +. (float_of_int i *. 0.35))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"add is commutative" ~count:200 (pair arb_pwl arb_pwl)
      (fun (a, b) -> Pwl.equal (Pwl.add a b) (Pwl.add b a));
    Test.make ~name:"add evaluates to sum" ~count:200 (pair arb_pwl arb_pwl)
      (fun (a, b) ->
        let s = Pwl.add a b in
        List.for_all
          (fun x ->
            Float.abs (Pwl.eval s x -. (Pwl.eval a x +. Pwl.eval b x)) < 1e-6)
          sample_points);
    Test.make ~name:"sub then add roundtrips" ~count:200 (pair arb_pwl arb_pwl)
      (fun (a, b) -> Pwl.equal ~eps:1e-6 (Pwl.add (Pwl.sub a b) b) a);
    Test.make ~name:"max2 dominates both" ~count:200 (pair arb_pwl arb_pwl)
      (fun (a, b) ->
        let m = Pwl.max2 a b in
        Pwl.dominates ~eps:1e-6 m a && Pwl.dominates ~eps:1e-6 m b);
    Test.make ~name:"max2 evaluates to max" ~count:200 (pair arb_pwl arb_pwl)
      (fun (a, b) ->
        let m = Pwl.max2 a b in
        List.for_all
          (fun x ->
            Float.abs (Pwl.eval m x -. Float.max (Pwl.eval a x) (Pwl.eval b x))
            < 1e-6)
          sample_points);
    Test.make ~name:"min2 is dominated by both" ~count:200 (pair arb_pwl arb_pwl)
      (fun (a, b) ->
        let m = Pwl.min2 a b in
        Pwl.dominates ~eps:1e-6 a m && Pwl.dominates ~eps:1e-6 b m);
    Test.make ~name:"dominance is reflexive" ~count:100 arb_pwl (fun a ->
        Pwl.dominates a a);
    Test.make ~name:"dominance antisymmetry up to equality" ~count:200
      (pair arb_pwl arb_pwl) (fun (a, b) ->
        (not (Pwl.dominates a b && Pwl.dominates b a)) || Pwl.equal ~eps:1e-6 a b);
    Test.make ~name:"scale distributes over add" ~count:200
      (triple (float_range (-3.) 3.) arb_pwl arb_pwl) (fun (c, a, b) ->
        Pwl.equal ~eps:1e-6
          (Pwl.scale c (Pwl.add a b))
          (Pwl.add (Pwl.scale c a) (Pwl.scale c b)));
    Test.make ~name:"shift_x preserves values" ~count:200
      (pair (float_range (-5.) 5.) arb_pwl) (fun (d, a) ->
        let s = Pwl.shift_x d a in
        List.for_all
          (fun x -> Float.abs (Pwl.eval s (x +. d) -. Pwl.eval a x) < 1e-6)
          sample_points);
    Test.make ~name:"clip_min never below" ~count:200
      (pair (float_range (-3.) 3.) arb_pwl) (fun (lo, a) ->
        let c = Pwl.clip_min lo a in
        List.for_all (fun x -> Pwl.eval c x >= lo -. 1e-9) sample_points);
  ]

(* ------------------------------------------------------------------ *)
(* Arena                                                              *)
(* ------------------------------------------------------------------ *)

module Arena = Tka_waveform.Arena

let stamp (buf, off) n v =
  for j = 0 to n - 1 do
    buf.(off + j) <- v
  done

let intact (buf, off) n v =
  let ok = ref true in
  for j = 0 to n - 1 do
    if buf.(off + j) <> v then ok := false
  done;
  !ok

let test_arena_disjoint () =
  (* stamp every slice after allocating all of them: any overlap (also
     across a chunk rollover) clobbers an earlier stamp *)
  let slices = List.init 40 (fun i -> (Arena.alloc (137 * (1 + (i mod 5))), 137 * (1 + (i mod 5)), float_of_int i)) in
  List.iter (fun (s, n, v) -> stamp s n v) slices;
  List.iter
    (fun (s, n, v) ->
      Alcotest.(check bool) "slice intact" true (intact s n v))
    slices

let test_arena_shrink_reuse () =
  (* the returned tail is the very next allocation: kernels allocate
     worst-case, simplify in place, and hand back what they didn't use *)
  let (b1, o1) = Arena.alloc 100 in
  Arena.shrink_last b1 o1 ~alloc:100 ~used:40;
  let (b2, o2) = Arena.alloc 10 in
  Alcotest.(check bool) "same chunk" true (b2 == b1);
  Alcotest.(check int) "starts right after the kept prefix" (o1 + 40) o2

let test_arena_shrink_stale () =
  (* shrinking an allocation that is no longer the latest must not
     hand its floats to anyone else *)
  let a = Arena.alloc 50 in
  let b = Arena.alloc 50 in
  stamp a 50 1.;
  stamp b 50 2.;
  Arena.shrink_last (fst a) (snd a) ~alloc:50 ~used:0;
  let c = Arena.alloc 60 in
  stamp c 60 3.;
  Alcotest.(check bool) "a intact" true (intact a 50 1.);
  Alcotest.(check bool) "b intact" true (intact b 50 2.)

let test_arena_large_dedicated () =
  (* a quarter-chunk request bypasses the bump cursor entirely *)
  let before = Arena.alloc 8 in
  let (big, bo) = Arena.alloc 16384 in
  let after = Arena.alloc 8 in
  Alcotest.(check int) "dedicated array starts at 0" 0 bo;
  Alcotest.(check int) "exact size" 16384 (Array.length big);
  Alcotest.(check bool) "cursor undisturbed" true
    (fst before == fst after && snd after = snd before + 8)

let test_arena_rollover () =
  (* fill past a chunk boundary: old slices keep their chunk alive and
     unchanged while new allocations land in a fresh one *)
  let first = Arena.alloc 1000 in
  stamp first 1000 7.;
  for _ = 1 to 80 do
    ignore (Arena.alloc 1000)
  done;
  Alcotest.(check bool) "pre-rollover slice intact" true (intact first 1000 7.)

let () =
  Alcotest.run "tka_pwl"
    [
      ( "construction",
        [
          Alcotest.test_case "empty" `Quick test_create_empty;
          Alcotest.test_case "unsorted" `Quick test_create_unsorted;
          Alcotest.test_case "conflicting duplicate" `Quick
            test_create_conflicting_duplicate;
          Alcotest.test_case "agreeing duplicate" `Quick test_create_agreeing_duplicate;
          Alcotest.test_case "collinear simplified" `Quick test_collinear_simplified;
          Alcotest.test_case "interpolation" `Quick test_eval_interpolation;
          Alcotest.test_case "constant extension" `Quick test_eval_extension;
          Alcotest.test_case "constant" `Quick test_constant;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "add exact" `Quick test_add_exact;
          Alcotest.test_case "sub self" `Quick test_sub_self_zero;
          Alcotest.test_case "scale/neg/shift" `Quick test_scale_neg_shift;
          Alcotest.test_case "sum list" `Quick test_sum_list;
          Alcotest.test_case "max2 crossing" `Quick test_max2_crossing_inserted;
          Alcotest.test_case "min2" `Quick test_min2;
          Alcotest.test_case "clip" `Quick test_clip;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "crossing undominated" `Quick test_dominates_crossing;
          Alcotest.test_case "dominates_on" `Quick test_dominates_on_interval;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "extrema",
        [
          Alcotest.test_case "max/min value" `Quick test_max_min_value;
          Alcotest.test_case "max_on" `Quick test_max_on;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "area" `Quick test_area;
          Alcotest.test_case "first/last x" `Quick test_first_last_x;
        ] );
      ( "crossings",
        [
          Alcotest.test_case "ramp t50" `Quick test_last_upcrossing_ramp;
          Alcotest.test_case "dip" `Quick test_last_upcrossing_dip;
          Alcotest.test_case "none" `Quick test_last_upcrossing_none;
          Alcotest.test_case "first" `Quick test_first_upcrossing;
          Alcotest.test_case "count" `Quick test_crossings_count;
        ] );
      ( "sliding_max",
        [
          Alcotest.test_case "unimodal" `Quick test_unimodal;
          Alcotest.test_case "zero window" `Quick test_sliding_max_zero_window;
          Alcotest.test_case "trapezoid" `Quick test_sliding_max_trapezoid;
          Alcotest.test_case "pointwise max" `Quick test_sliding_max_is_pointwise_max;
          Alcotest.test_case "rejects bimodal" `Quick test_sliding_max_rejects_bimodal;
          Alcotest.test_case "monotone in window" `Quick
            test_sliding_max_monotone_in_window;
        ] );
      ( "arena",
        [
          Alcotest.test_case "allocations are disjoint" `Quick
            test_arena_disjoint;
          Alcotest.test_case "shrink_last returns the tail" `Quick
            test_arena_shrink_reuse;
          Alcotest.test_case "shrink of a stale allocation is a no-op" `Quick
            test_arena_shrink_stale;
          Alcotest.test_case "large requests get exact arrays" `Quick
            test_arena_large_dedicated;
          Alcotest.test_case "chunk rollover preserves live slices" `Quick
            test_arena_rollover;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
