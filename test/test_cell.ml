(* Tests for the cell model, delay model, default library and the
   Liberty-lite parser. *)

module Cell = Tka_cell.Cell
module DM = Tka_cell.Delay_model
module Lib = Tka_cell.Default_lib
module Liberty = Tka_cell.Liberty_lite

let check_f = Alcotest.(check (float 1e-9))

let mk_cell ?(name = "T") () =
  Cell.make ~name
    ~inputs:[ Cell.input_pin ~name:"A" ~capacitance:0.003 ]
    ~output:(Cell.output_pin ~name:"Y") ~logic:"!A" ~intrinsic_delay:0.02
    ~drive_resistance:2.0 ~intrinsic_slew:0.015 ~slew_resistance:2.5

(* ------------------------------------------------------------------ *)
(* Cell                                                               *)
(* ------------------------------------------------------------------ *)

let test_cell_make () =
  let c = mk_cell () in
  Alcotest.(check int) "arity" 1 (Cell.arity c);
  Alcotest.(check (list string)) "input names" [ "A" ] (Cell.input_names c);
  check_f "input cap" 0.003 (Cell.input_capacitance c "A")

let test_cell_no_inputs () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Cell.make ~name:"X" ~inputs:[] ~output:(Cell.output_pin ~name:"Y")
            ~logic:"" ~intrinsic_delay:0.01 ~drive_resistance:1.
            ~intrinsic_slew:0.01 ~slew_resistance:1.);
       false
     with Invalid_argument _ -> true)

let test_cell_duplicate_pins () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Cell.make ~name:"X"
            ~inputs:
              [
                Cell.input_pin ~name:"A" ~capacitance:0.001;
                Cell.input_pin ~name:"A" ~capacitance:0.002;
              ]
            ~output:(Cell.output_pin ~name:"Y") ~logic:"" ~intrinsic_delay:0.01
            ~drive_resistance:1. ~intrinsic_slew:0.01 ~slew_resistance:1.);
       false
     with Invalid_argument _ -> true)

let test_cell_bad_params () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Cell.make ~name:"X"
            ~inputs:[ Cell.input_pin ~name:"A" ~capacitance:0.001 ]
            ~output:(Cell.output_pin ~name:"Y") ~logic:"" ~intrinsic_delay:0.
            ~drive_resistance:1. ~intrinsic_slew:0.01 ~slew_resistance:1.);
       false
     with Invalid_argument _ -> true)

let test_cell_find_input () =
  let c = mk_cell () in
  Alcotest.(check bool) "found" true (Cell.find_input c "A" <> None);
  Alcotest.(check bool) "absent" true (Cell.find_input c "B" = None);
  Alcotest.(check bool) "input_capacitance raises" true
    (try
       ignore (Cell.input_capacitance c "Z");
       false
     with Not_found -> true)

let test_negative_pin_cap () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Cell.input_pin ~name:"A" ~capacitance:(-1.));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Delay model                                                        *)
(* ------------------------------------------------------------------ *)

let test_gate_delay_linear () =
  let c = mk_cell () in
  check_f "no load" 0.02 (DM.gate_delay ~cell:c ~load:0.);
  check_f "loaded" (0.02 +. (2.0 *. 0.01)) (DM.gate_delay ~cell:c ~load:0.01);
  (* linearity *)
  let d1 = DM.gate_delay ~cell:c ~load:0.005 in
  let d2 = DM.gate_delay ~cell:c ~load:0.010 in
  let d3 = DM.gate_delay ~cell:c ~load:0.015 in
  check_f "equal increments" (d2 -. d1) (d3 -. d2)

let test_gate_delay_negative_load () =
  let c = mk_cell () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (DM.gate_delay ~cell:c ~load:(-1.));
       false
     with Invalid_argument _ -> true)

let test_output_slew () =
  let c = mk_cell () in
  check_f "cell-limited"
    (0.015 +. (2.5 *. 0.01))
    (DM.output_slew ~cell:c ~input_slew:0.01 ~load:0.01);
  (* very slow input leaks through *)
  check_f "input-limited" (DM.slew_leak *. 1.0)
    (DM.output_slew ~cell:c ~input_slew:1.0 ~load:0.)

let test_holding_resistance () =
  let c = mk_cell () in
  check_f "holding = drive" 2.0 (DM.holding_resistance c)

let test_rc_units () = check_f "kOhm * pF = ns" 0.02 (DM.rc ~resistance:2. ~capacitance:0.01)

(* ------------------------------------------------------------------ *)
(* Default library                                                    *)
(* ------------------------------------------------------------------ *)

let test_lib_lookup () =
  Alcotest.(check bool) "INV_X1" true (Lib.find "INV_X1" <> None);
  Alcotest.(check bool) "NAND2_X4" true (Lib.find "NAND2_X4" <> None);
  Alcotest.(check bool) "unknown" true (Lib.find "NAND9_X1" = None);
  Alcotest.(check bool) "find_exn raises" true
    (try
       ignore (Lib.find_exn "NOPE");
       false
     with Not_found -> true)

let test_lib_complete () =
  (* 12 functions x 3 drives *)
  Alcotest.(check int) "cell count" 36 (List.length Lib.cells);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Cell.name ^ " arity sane")
        true
        (Cell.arity c >= 1 && Cell.arity c <= 3))
    Lib.cells

let test_lib_drive_ordering () =
  let r n = (Lib.find_exn n).Cell.drive_resistance in
  Alcotest.(check bool) "X2 stronger" true (r "INV_X2" < r "INV_X1");
  Alcotest.(check bool) "X4 strongest" true (r "INV_X4" < r "INV_X2");
  let cap n = Cell.input_capacitance (Lib.find_exn n) "A" in
  Alcotest.(check bool) "X2 bigger pins" true (cap "INV_X2" > cap "INV_X1")

let test_lib_arity_query () =
  List.iter
    (fun c -> Alcotest.(check int) (c.Cell.name ^ " arity") 2 (Cell.arity c))
    (Lib.combinational_of_arity 2);
  Alcotest.(check bool) "some 2-input cells" true
    (List.length (Lib.combinational_of_arity 2) > 0)

(* ------------------------------------------------------------------ *)
(* Liberty-lite                                                       *)
(* ------------------------------------------------------------------ *)

let test_liberty_dump_complete () =
  let text = Lib.to_liberty () in
  List.iter
    (fun c ->
      let needle = Printf.sprintf "cell(%s)" c.Cell.name in
      let rec find i =
        i + String.length needle <= String.length text
        && (String.sub text i (String.length needle) = needle || find (i + 1))
      in
      Alcotest.(check bool) (c.Cell.name ^ " in dump") true (find 0))
    Lib.cells

let test_liberty_roundtrip () =
  let parsed = Liberty.parse (Lib.to_liberty ()) in
  Alcotest.(check string) "library name" Lib.name parsed.Liberty.library_name;
  Alcotest.(check int) "cell count" (List.length Lib.cells)
    (List.length parsed.Liberty.cells);
  let approx = Tka_util.Float_cmp.approx ~eps:1e-6 in
  List.iter2
    (fun a b ->
      let ok =
        a.Cell.name = b.Cell.name
        && Cell.input_names a = Cell.input_names b
        && a.Cell.logic = b.Cell.logic
        && approx a.Cell.intrinsic_delay b.Cell.intrinsic_delay
        && approx a.Cell.drive_resistance b.Cell.drive_resistance
        && approx a.Cell.intrinsic_slew b.Cell.intrinsic_slew
        && approx a.Cell.slew_resistance b.Cell.slew_resistance
        && List.for_all
             (fun p ->
               approx p.Cell.capacitance
                 (Cell.input_capacitance b p.Cell.pin_name))
             a.Cell.inputs
      in
      Alcotest.(check bool) (a.Cell.name ^ " round-trips") true ok)
    Lib.cells parsed.Liberty.cells

let minimal_lib =
  {|
library(mini) {
  // a comment
  cell(INV) {
    intrinsic_delay : 0.02;
    drive_resistance : 2.0;
    intrinsic_slew : 0.015;
    slew_resistance : 2.5;
    function : "!A";
    pin(A) { direction : input; capacitance : 0.003; }
    pin(Y) { direction : output; }
  }
}
|}

let test_liberty_minimal () =
  let l = Liberty.parse minimal_lib in
  Alcotest.(check string) "name" "mini" l.Liberty.library_name;
  match Liberty.find l "INV" with
  | None -> Alcotest.fail "INV missing"
  | Some c ->
    check_f "delay" 0.02 c.Cell.intrinsic_delay;
    Alcotest.(check string) "logic" "!A" c.Cell.logic

let test_liberty_block_comment () =
  let src = "library(x) { /* nothing \n here */ }" in
  let l = Liberty.parse src in
  Alcotest.(check int) "no cells" 0 (List.length l.Liberty.cells)

let expect_error src =
  try
    ignore (Liberty.parse src);
    Alcotest.fail "expected Parse_error"
  with Liberty.Parse_error _ -> ()

let test_liberty_errors () =
  expect_error "cell(X) {}";
  expect_error "library(x) { cell(A) { pin(Y) { direction : output; } } }";
  (* missing model attrs *)
  expect_error
    "library(x) { cell(A) { intrinsic_delay : 1; drive_resistance : 1; \
     intrinsic_slew : 1; slew_resistance : 1; } }";
  (* no output pin *)
  expect_error "library(x) { cell(A) { intrinsic_delay : oops; } }";
  expect_error "library(x) { cell(A) "

let test_liberty_error_line () =
  try
    ignore (Liberty.parse "library(x) {\n  cell(A) {\n    bad bad\n  }\n}")
  with Liberty.Parse_error { line; _ } ->
    Alcotest.(check bool) "line recorded" true (line >= 2)

(* Table-driven error paths: (case, source, expected line, message
   substring). Lexical errors carry the exact offending line; semantic
   errors (missing attribute, pin checks) are exercised on one-line
   sources so the reported line is unambiguous. *)
let test_liberty_error_table () =
  List.iter
    (fun (case, src, want_line, want_sub) ->
      match Liberty.parse src with
      | _ -> Alcotest.fail (Printf.sprintf "%s: expected Parse_error" case)
      | exception Liberty.Parse_error { line; message } ->
        Alcotest.(check int) (Printf.sprintf "%s: line" case) want_line line;
        let contains_sub s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        if not (contains_sub message want_sub) then
          Alcotest.fail
            (Printf.sprintf "%s: message %S does not mention %S" case message
               want_sub))
    [
      ("not a library", "cell(X) {}", 1, "expected 'library'");
      ( "malformed number",
        "library(x) {\ncell(A) {\nintrinsic_delay : 1.2.3;\n}\n}",
        3,
        "malformed number" );
      ( "non-finite number",
        "library(x) {\ncell(A) {\nintrinsic_delay : 1e999;\n}\n}",
        3,
        "non-finite number" );
      ("unterminated block comment", "library(x) {\n/* foo", 2, "unterminated");
      ( "unterminated string",
        "library(x) {\ncell(A) {\nfunction : \"!A",
        3,
        "unterminated string" );
      ( "missing attribute",
        "library(x) { cell(A) { pin(Y) { direction : output; } } }",
        1,
        "missing attribute" );
      ( "no output pin",
        "library(x) { cell(A) { intrinsic_delay : 1; drive_resistance : 1; \
         intrinsic_slew : 1; slew_resistance : 1; } }",
        1,
        "no output pin" );
      ("truncated file", "library(x) { cell(A) ", 1, "expected '{'");
      ( "trailing content",
        "library(x) { } garbage",
        1,
        "trailing content" );
    ]

let test_liberty_unknown_pin_attr_tolerated () =
  let src =
    {|
library(x) {
  cell(B) {
    intrinsic_delay : 0.01;
    drive_resistance : 1.0;
    intrinsic_slew : 0.01;
    slew_resistance : 1.0;
    pin(A) { direction : input; capacitance : 0.001; max_transition : 0.5; }
    pin(Y) { direction : output; }
  }
}
|}
  in
  let l = Liberty.parse src in
  Alcotest.(check int) "parsed" 1 (List.length l.Liberty.cells)

(* ------------------------------------------------------------------ *)
(* Corners                                                            *)
(* ------------------------------------------------------------------ *)

module Corner = Tka_cell.Corner

let test_corner_typical_identity () =
  let c = mk_cell () in
  let d = Corner.derate_cell Corner.typical c in
  Alcotest.(check string) "name kept" c.Cell.name d.Cell.name;
  check_f "delay" c.Cell.intrinsic_delay d.Cell.intrinsic_delay;
  check_f "res" c.Cell.drive_resistance d.Cell.drive_resistance;
  check_f "cap" (Cell.input_capacitance c "A") (Cell.input_capacitance d "A")

let test_corner_slow_fast_ordering () =
  let c = mk_cell () in
  let s = Corner.derate_cell Corner.slow c in
  let f = Corner.derate_cell Corner.fast c in
  Alcotest.(check bool) "slow slower" true
    (s.Cell.intrinsic_delay > c.Cell.intrinsic_delay);
  Alcotest.(check bool) "fast faster" true
    (f.Cell.intrinsic_delay < c.Cell.intrinsic_delay);
  Alcotest.(check bool) "slow weaker" true
    (s.Cell.drive_resistance > f.Cell.drive_resistance);
  Alcotest.(check string) "suffix" "T@ss" s.Cell.name

let test_corner_library () =
  let lib = Corner.derate_library Corner.slow Lib.cells in
  Alcotest.(check int) "size kept" (List.length Lib.cells) (List.length lib);
  Alcotest.(check bool) "validation" true
    (try
       ignore (Corner.make ~name:"x" ~delay_factor:0. ~resistance_factor:1.
                 ~capacitance_factor:1.);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* NLDM tables                                                        *)
(* ------------------------------------------------------------------ *)

module Nldm = Tka_cell.Nldm

let small_table () =
  Nldm.create ~slews:[| 0.01; 0.1 |] ~loads:[| 0.001; 0.01; 0.1 |]
    ~values:[| [| 1.; 2.; 3. |]; [| 2.; 4.; 6. |] |]

let test_nldm_create_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-increasing axis" true
    (bad (fun () ->
         Nldm.create ~slews:[| 0.1; 0.1 |] ~loads:[| 0.; 1. |]
           ~values:[| [| 1.; 1. |]; [| 1.; 1. |] |]));
  Alcotest.(check bool) "one-point axis" true
    (bad (fun () ->
         Nldm.create ~slews:[| 0.1 |] ~loads:[| 0.; 1. |] ~values:[| [| 1.; 1. |] |]));
  Alcotest.(check bool) "ragged rows" true
    (bad (fun () ->
         Nldm.create ~slews:[| 0.01; 0.1 |] ~loads:[| 0.; 1. |]
           ~values:[| [| 1.; 1. |]; [| 1. |] |]))

let test_nldm_grid_points_exact () =
  let t = small_table () in
  check_f "corner" 1. (Nldm.lookup t ~input_slew:0.01 ~load:0.001);
  check_f "middle column" 4. (Nldm.lookup t ~input_slew:0.1 ~load:0.01);
  check_f "far corner" 6. (Nldm.lookup t ~input_slew:0.1 ~load:0.1)

let test_nldm_bilinear_midpoint () =
  let t = small_table () in
  (* midpoint of the first cell: mean of the four corners *)
  check_f "midpoint" 2.25 (Nldm.lookup t ~input_slew:0.055 ~load:0.0055)

let test_nldm_clamping () =
  let t = small_table () in
  check_f "below both axes" 1. (Nldm.lookup t ~input_slew:0.0001 ~load:0.00001);
  check_f "above both axes" 6. (Nldm.lookup t ~input_slew:10. ~load:10.)

let test_nldm_of_linear_matches_model () =
  let c = mk_cell () in
  let delay_t, slew_t = Nldm.of_linear c in
  (* exact at grid points *)
  Array.iter
    (fun s ->
      Array.iter
        (fun l ->
          check_f "delay grid"
            (DM.gate_delay ~cell:c ~load:l)
            (Nldm.lookup delay_t ~input_slew:s ~load:l);
          check_f "slew grid"
            (DM.output_slew ~cell:c ~input_slew:s ~load:l)
            (Nldm.lookup slew_t ~input_slew:s ~load:l))
        (Nldm.loads delay_t))
    (Nldm.slews delay_t);
  (* affine in load => exact between load points too *)
  check_f "between grid points"
    (DM.gate_delay ~cell:c ~load:0.0123)
    (Nldm.lookup delay_t ~input_slew:0.03 ~load:0.0123);
  Alcotest.(check bool) "monotone in load" true (Nldm.monotone_in_load delay_t);
  Alcotest.(check bool) "slew monotone in load" true (Nldm.monotone_in_load slew_t)

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"gate delay monotone in load" ~count:200
      (pair (float_range 0. 0.1) (float_range 0. 0.1)) (fun (l1, l2) ->
        let c = mk_cell () in
        let lo, hi = (Float.min l1 l2, Float.max l1 l2) in
        DM.gate_delay ~cell:c ~load:lo <= DM.gate_delay ~cell:c ~load:hi +. 1e-12);
    Test.make ~name:"output slew at least leak" ~count:200
      (pair (float_range 0. 2.) (float_range 0. 0.1)) (fun (s, l) ->
        let c = mk_cell () in
        DM.output_slew ~cell:c ~input_slew:s ~load:l >= (DM.slew_leak *. s) -. 1e-12);
  ]

let () =
  Alcotest.run "tka_cell"
    [
      ( "cell",
        [
          Alcotest.test_case "make" `Quick test_cell_make;
          Alcotest.test_case "no inputs" `Quick test_cell_no_inputs;
          Alcotest.test_case "duplicate pins" `Quick test_cell_duplicate_pins;
          Alcotest.test_case "bad params" `Quick test_cell_bad_params;
          Alcotest.test_case "find input" `Quick test_cell_find_input;
          Alcotest.test_case "negative pin cap" `Quick test_negative_pin_cap;
        ] );
      ( "delay_model",
        [
          Alcotest.test_case "linear" `Quick test_gate_delay_linear;
          Alcotest.test_case "negative load" `Quick test_gate_delay_negative_load;
          Alcotest.test_case "output slew" `Quick test_output_slew;
          Alcotest.test_case "holding resistance" `Quick test_holding_resistance;
          Alcotest.test_case "rc units" `Quick test_rc_units;
        ] );
      ( "default_lib",
        [
          Alcotest.test_case "lookup" `Quick test_lib_lookup;
          Alcotest.test_case "complete" `Quick test_lib_complete;
          Alcotest.test_case "drive ordering" `Quick test_lib_drive_ordering;
          Alcotest.test_case "arity query" `Quick test_lib_arity_query;
        ] );
      ( "nldm",
        [
          Alcotest.test_case "validation" `Quick test_nldm_create_validation;
          Alcotest.test_case "grid exact" `Quick test_nldm_grid_points_exact;
          Alcotest.test_case "bilinear midpoint" `Quick test_nldm_bilinear_midpoint;
          Alcotest.test_case "clamping" `Quick test_nldm_clamping;
          Alcotest.test_case "of_linear" `Quick test_nldm_of_linear_matches_model;
        ] );
      ( "corner",
        [
          Alcotest.test_case "typical identity" `Quick test_corner_typical_identity;
          Alcotest.test_case "slow/fast ordering" `Quick test_corner_slow_fast_ordering;
          Alcotest.test_case "library" `Quick test_corner_library;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "dump complete" `Quick test_liberty_dump_complete;
          Alcotest.test_case "roundtrip" `Quick test_liberty_roundtrip;
          Alcotest.test_case "minimal" `Quick test_liberty_minimal;
          Alcotest.test_case "block comment" `Quick test_liberty_block_comment;
          Alcotest.test_case "errors" `Quick test_liberty_errors;
          Alcotest.test_case "error line" `Quick test_liberty_error_line;
          Alcotest.test_case "error table" `Quick test_liberty_error_table;
          Alcotest.test_case "unknown pin attr" `Quick
            test_liberty_unknown_pin_attr_tolerated;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
