(* Tests for the synthetic layout flow and benchmark generation. *)

module G = Tka_layout.Geometry
module Placement = Tka_layout.Placement
module Routing = Tka_layout.Routing
module Cx = Tka_layout.Coupling_extract
module B = Tka_layout.Benchmarks
module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Nf = Tka_circuit.Netlist_format
module Lib = Tka_cell.Default_lib

let check_f = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Geometry                                                           *)
(* ------------------------------------------------------------------ *)

let test_segments () =
  let h = G.hseg ~y:2. ~x0:5. ~x1:1. in
  check_f "normalised lo" 1. h.G.s_lo;
  check_f "normalised hi" 5. h.G.s_hi;
  check_f "length" 4. (G.length h);
  let v = G.vseg ~x:1. ~y0:0. ~y1:3. in
  check_f "vertical length" 3. (G.length v)

let test_parallel_overlap () =
  let a = G.hseg ~y:0. ~x0:0. ~x1:4. in
  let b = G.hseg ~y:2. ~x0:2. ~x1:6. in
  check_f "overlap" 2. (G.parallel_overlap a b);
  let c = G.hseg ~y:2. ~x0:5. ~x1:6. in
  check_f "disjoint" 0. (G.parallel_overlap a c);
  let v = G.vseg ~x:0. ~y0:0. ~y1:4. in
  check_f "perpendicular" 0. (G.parallel_overlap a v)

let test_track_distance () =
  let a = G.hseg ~y:0. ~x0:0. ~x1:4. in
  let b = G.hseg ~y:3. ~x0:0. ~x1:4. in
  (match G.track_distance a b with
  | Some d -> check_f "distance" 3. d
  | None -> Alcotest.fail "parallel");
  let v = G.vseg ~x:0. ~y0:0. ~y1:4. in
  Alcotest.(check bool) "perpendicular none" true (G.track_distance a v = None)

let test_l_route () =
  let segs = G.l_route (G.point 0. 0.) (G.point 3. 4.) in
  Alcotest.(check int) "two segments" 2 (List.length segs);
  check_f "manhattan length" 7. (G.total_length segs);
  check_f "manhattan" 7. (G.manhattan (G.point 0. 0.) (G.point 3. 4.));
  Alcotest.(check int) "straight has one" 1
    (List.length (G.l_route (G.point 0. 0.) (G.point 3. 0.)));
  Alcotest.(check int) "same point zero" 0
    (List.length (G.l_route (G.point 1. 1.) (G.point 1. 1.)))

(* ------------------------------------------------------------------ *)
(* Placement & routing                                                *)
(* ------------------------------------------------------------------ *)

let placed_tiny () =
  let nl = B.tiny () in
  let topo = Topo.create nl in
  let rng = Tka_util.Rng.create 7 in
  (nl, topo, Placement.place ~rng topo)

let test_placement_columns_follow_levels () =
  let nl, topo, p = placed_tiny () in
  Array.iter
    (fun g ->
      let expected =
        float_of_int (Topo.net_level topo g.N.fanout) *. Placement.column_pitch
      in
      check_f (g.N.gate_name ^ " column") expected
        (Placement.gate_position p g.N.gate_id).G.x)
    (N.gates nl)

let test_placement_rows_in_range () =
  let nl, _, p = placed_tiny () in
  let max_y = float_of_int (Placement.num_rows p) *. Placement.row_pitch in
  Array.iter
    (fun g ->
      let y = (Placement.gate_position p g.N.gate_id).G.y in
      Alcotest.(check bool) "row in range" true (y >= 0. && y < max_y))
    (N.gates nl)

let test_placement_sources_and_sinks () =
  let nl, _, p = placed_tiny () in
  List.iter
    (fun nid -> check_f "PI on left edge" 0. (Placement.net_source p nid).G.x)
    (N.inputs nl);
  Array.iter
    (fun n ->
      if n.N.sinks <> [] then
        Alcotest.(check int)
          (n.N.net_name ^ " sink count")
          (List.length n.N.sinks)
          (List.length (Placement.net_sinks p n.N.net_id)))
    (N.nets nl)

let test_routing_lengths () =
  let nl, _, p = placed_tiny () in
  let r = Routing.route p in
  Array.iter
    (fun n ->
      let len = Routing.wire_length r n.N.net_id in
      Alcotest.(check bool) (n.N.net_name ^ " nonneg") true (len >= 0.);
      Alcotest.(check bool) "cap includes fixed" true
        (Routing.wire_cap r n.N.net_id > 0.);
      Alcotest.(check bool) "res includes fixed" true
        (Routing.wire_res r n.N.net_id > 0.))
    (N.nets nl)

let test_routing_segments_connect () =
  let nl, _, p = placed_tiny () in
  let r = Routing.route p in
  Array.iter
    (fun n ->
      let segs = Routing.segments_of_net r n.N.net_id in
      let expect = G.total_length segs in
      check_f (n.N.net_name ^ " consistent") expect
        (Routing.wire_length r n.N.net_id))
    (N.nets nl)

(* ------------------------------------------------------------------ *)
(* Coupling extraction                                                *)
(* ------------------------------------------------------------------ *)

let test_extract_properties () =
  let nl, _, p = placed_tiny () in
  let r = Routing.route p in
  let caps = Cx.extract r in
  List.iter
    (fun e ->
      Alcotest.(check bool) "positive" true (e.Cx.ex_cap > 0.);
      Alcotest.(check bool) "distinct nets" true (e.Cx.ex_net_a <> e.Cx.ex_net_b);
      Alcotest.(check bool) "valid ids" true
        (e.Cx.ex_net_a < N.num_nets nl && e.Cx.ex_net_b < N.num_nets nl))
    caps;
  let rec sorted = function
    | a :: (b :: _ as tl) -> a.Cx.ex_cap >= b.Cx.ex_cap && sorted tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (sorted caps);
  let keys =
    List.map
      (fun e ->
        (min e.Cx.ex_net_a e.Cx.ex_net_b, max e.Cx.ex_net_a e.Cx.ex_net_b))
      caps
  in
  Alcotest.(check int) "unique pairs" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_trim () =
  let entries =
    List.map
      (fun i ->
        { Cx.ex_net_a = i; ex_net_b = i + 1; ex_cap = float_of_int (10 - i) })
      [ 0; 1; 2; 3; 4 ]
  in
  let kept, avail = Cx.trim ~target:3 entries in
  Alcotest.(check int) "kept" 3 (List.length kept);
  Alcotest.(check int) "available" 5 avail;
  let kept2, avail2 = Cx.trim ~target:10 entries in
  Alcotest.(check int) "short kept" 5 (List.length kept2);
  Alcotest.(check int) "short avail" 5 avail2

(* ------------------------------------------------------------------ *)
(* Benchmarks                                                         *)
(* ------------------------------------------------------------------ *)

let test_tiny_wellformed () =
  let nl = B.tiny () in
  Alcotest.(check int) "gates" 6 (N.num_gates nl);
  Alcotest.(check int) "couplings" 8 (N.num_couplings nl);
  Alcotest.(check bool) "has output" true (N.outputs nl <> [])

let test_c17 () =
  let nl = B.c17 () in
  Alcotest.(check int) "gates" 6 (N.num_gates nl);
  Alcotest.(check int) "inputs" 5 (List.length (N.inputs nl));
  Alcotest.(check int) "outputs" 2 (List.length (N.outputs nl));
  Alcotest.(check int) "couplings" 6 (N.num_couplings nl);
  let topo = Topo.create nl in
  Alcotest.(check int) "depth" 3 (Topo.max_level topo);
  (* every gate is a NAND2 *)
  Array.iter
    (fun g ->
      Alcotest.(check string) "nand2" "NAND2_X1" g.N.cell.Tka_cell.Cell.name)
    (N.gates nl)

let test_specs_table2 () =
  Alcotest.(check int) "ten benchmarks" 10 (List.length B.all_specs);
  let s = Option.get (B.spec_of_name "i5") in
  Alcotest.(check int) "i5 gates" 204 s.B.sp_gates;
  Alcotest.(check int) "i5 couplings" 1835 s.B.sp_couplings;
  Alcotest.(check bool) "unknown" true (B.spec_of_name "i11" = None)

let test_generate_matches_spec () =
  let spec = Option.get (B.spec_of_name "i1") in
  let nl = B.generate spec in
  Alcotest.(check int) "gate count" spec.B.sp_gates (N.num_gates nl);
  Alcotest.(check int) "coupling count" spec.B.sp_couplings (N.num_couplings nl);
  Alcotest.(check string) "name" "i1" (N.name nl)

let test_generate_deterministic () =
  let spec = Option.get (B.spec_of_name "i1") in
  let a = Nf.print (B.generate spec) in
  let b = Nf.print (B.generate spec) in
  Alcotest.(check bool) "identical netlists" true (String.equal a b)

let test_generate_seed_sensitivity () =
  let spec = Option.get (B.spec_of_name "i1") in
  let a = Nf.print (B.generate spec) in
  let b = Nf.print (B.generate { spec with B.sp_seed = spec.B.sp_seed + 1 }) in
  Alcotest.(check bool) "different with other seed" false (String.equal a b)

let test_generate_depth () =
  let spec = Option.get (B.spec_of_name "i1") in
  let nl = B.generate spec in
  let topo = Topo.create nl in
  Alcotest.(check int) "target depth" spec.B.sp_depth (Topo.max_level topo)

let test_generate_acyclic_and_parsable () =
  let nl = B.generate (Option.get (B.spec_of_name "i3")) in
  let nl2 = Nf.parse ~lookup:Lib.find (Nf.print nl) in
  Alcotest.(check int) "round-trip gates" (N.num_gates nl) (N.num_gates nl2)

let test_generate_fanout_bounded () =
  let nl = B.generate (Option.get (B.spec_of_name "i2")) in
  Array.iter
    (fun n ->
      Alcotest.(check bool)
        (n.N.net_name ^ " fanout bounded")
        true
        (List.length n.N.sinks <= 8))
    (N.nets nl)

let test_generate_couplings_positive () =
  let nl = B.generate (Option.get (B.spec_of_name "i1")) in
  Array.iter
    (fun c -> Alcotest.(check bool) "cap positive" true (c.N.coupling_cap > 0.))
    (N.couplings nl)

(* ------------------------------------------------------------------ *)
(* Random round-trip properties                                       *)
(* ------------------------------------------------------------------ *)

let random_nl seed =
  B.generate
    {
      B.sp_name = Printf.sprintf "r%d" seed;
      sp_gates = 15 + (seed mod 20);
      sp_inputs = 3 + (seed mod 4);
      sp_depth = 3 + (seed mod 4);
      sp_couplings = 10 + (seed mod 25);
      sp_seed = seed;
    }

let roundtrip_qcheck =
  let open QCheck in
  [
    Test.make ~name:"netlist text format round-trips" ~count:20 (int_range 1 10000)
      (fun seed ->
        let nl = random_nl seed in
        let nl2 = Nf.parse ~lookup:Lib.find (Nf.print nl) in
        Nf.print nl = Nf.print nl2
        && N.num_couplings nl = N.num_couplings nl2);
    Test.make ~name:"verilog + spef round-trips" ~count:20 (int_range 1 10000)
      (fun seed ->
        let nl = random_nl seed in
        let module V = Tka_circuit.Verilog_lite in
        let module Spef = Tka_circuit.Spef_lite in
        let bare = V.parse ~lookup:Lib.find (V.print nl) in
        let full = Spef.apply (Spef.parse (Spef.print nl)) bare in
        N.num_gates full = N.num_gates nl
        && N.num_couplings full = N.num_couplings nl);
    Test.make ~name:"generated circuits have plausible structure" ~count:20
      (int_range 1 10000) (fun seed ->
        let nl = random_nl seed in
        let topo = Topo.create nl in
        Topo.max_level topo >= 3
        && List.length (N.outputs nl) >= 1
        && Array.for_all (fun c -> c.N.coupling_cap > 0.) (N.couplings nl));
  ]

let () =
  Alcotest.run "tka_layout"
    [
      ( "geometry",
        [
          Alcotest.test_case "segments" `Quick test_segments;
          Alcotest.test_case "overlap" `Quick test_parallel_overlap;
          Alcotest.test_case "track distance" `Quick test_track_distance;
          Alcotest.test_case "l_route" `Quick test_l_route;
        ] );
      ( "placement",
        [
          Alcotest.test_case "columns follow levels" `Quick
            test_placement_columns_follow_levels;
          Alcotest.test_case "rows in range" `Quick test_placement_rows_in_range;
          Alcotest.test_case "sources/sinks" `Quick test_placement_sources_and_sinks;
        ] );
      ( "routing",
        [
          Alcotest.test_case "lengths" `Quick test_routing_lengths;
          Alcotest.test_case "segments consistent" `Quick test_routing_segments_connect;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "properties" `Quick test_extract_properties;
          Alcotest.test_case "trim" `Quick test_trim;
        ] );
      ("round-trip properties", List.map QCheck_alcotest.to_alcotest roundtrip_qcheck);
      ( "benchmarks",
        [
          Alcotest.test_case "tiny" `Quick test_tiny_wellformed;
          Alcotest.test_case "c17" `Quick test_c17;
          Alcotest.test_case "table2 specs" `Quick test_specs_table2;
          Alcotest.test_case "matches spec" `Quick test_generate_matches_spec;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generate_seed_sensitivity;
          Alcotest.test_case "depth" `Quick test_generate_depth;
          Alcotest.test_case "parsable" `Quick test_generate_acyclic_and_parsable;
          Alcotest.test_case "fanout bounded" `Quick test_generate_fanout_bounded;
          Alcotest.test_case "couplings positive" `Quick test_generate_couplings_positive;
        ] );
    ]
