(* Unit and property tests for Tka_util. *)

module Rng = Tka_util.Rng
module Interval = Tka_util.Interval
module F = Tka_util.Float_cmp
module Stats = Tka_util.Stats
module Tt = Tka_util.Text_table

let check_f = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    Alcotest.(check bool) "in [0,13)" true (x >= 0 && x < 13)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_int_invalid () =
  let r = Rng.create 9 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 10 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0. && x < 2.5)
  done

let test_rng_float_in () =
  let r = Rng.create 11 in
  for _ = 1 to 100 do
    let x = Rng.float_in r (-1.) 1. in
    Alcotest.(check bool) "in [-1,1)" true (x >= -1. && x < 1.)
  done

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let s1 = Rng.split r in
  let r' = Rng.create 5 in
  let s1' = Rng.split r' in
  (* split streams reproduce *)
  for _ = 1 to 20 do
    Alcotest.(check int64) "split reproduces" (Rng.bits64 s1) (Rng.bits64 s1')
  done

let test_rng_copy () =
  let r = Rng.create 21 in
  ignore (Rng.bits64 r);
  let c = Rng.copy r in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 r) (Rng.bits64 c)

let test_rng_pick () =
  let r = Rng.create 12 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.pick r arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let test_rng_shuffle_permutation () =
  let r = Rng.create 13 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_sample_distinct () =
  let r = Rng.create 14 in
  let s = Rng.sample r 5 (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "size" 5 (Array.length s);
  let u = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 5 (List.length u)

let test_rng_gaussian_moments () =
  let r = Rng.create 15 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian r ~mean:3. ~stddev:2.) in
  let m = Stats.mean xs in
  let s = Stats.stddev xs in
  Alcotest.(check bool) "mean close to 3" true (Float.abs (m -. 3.) < 0.1);
  Alcotest.(check bool) "stddev close to 2" true (Float.abs (s -. 2.) < 0.1)

let test_rng_chance_extremes () =
  let r = Rng.create 16 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.chance r 1.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 always false" false (Rng.chance r 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Interval                                                           *)
(* ------------------------------------------------------------------ *)

let test_interval_basic () =
  let i = Interval.make 1. 3. in
  check_f "lo" 1. (Interval.lo i);
  check_f "hi" 3. (Interval.hi i);
  check_f "width" 2. (Interval.width i);
  check_f "mid" 2. (Interval.mid i)

let test_interval_invalid () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Interval.make 2. 1.);
       false
     with Invalid_argument _ -> true)

let test_interval_point () =
  let p = Interval.point 5. in
  check_f "width 0" 0. (Interval.width p);
  Alcotest.(check bool) "contains" true (Interval.contains p 5.)

let test_interval_contains () =
  let i = Interval.make 0. 1. in
  Alcotest.(check bool) "inside" true (Interval.contains i 0.5);
  Alcotest.(check bool) "boundary lo" true (Interval.contains i 0.);
  Alcotest.(check bool) "boundary hi" true (Interval.contains i 1.);
  Alcotest.(check bool) "outside" false (Interval.contains i 1.5)

let test_interval_overlap () =
  let a = Interval.make 0. 2. and b = Interval.make 1. 3. in
  Alcotest.(check bool) "overlap" true (Interval.overlaps a b);
  let c = Interval.make 2. 4. in
  Alcotest.(check bool) "touching counts" true (Interval.overlaps a c);
  let d = Interval.make 2.5 4. in
  Alcotest.(check bool) "disjoint" false (Interval.overlaps a d)

let test_interval_intersect () =
  let a = Interval.make 0. 2. and b = Interval.make 1. 3. in
  (match Interval.intersect a b with
  | Some i ->
    check_f "lo" 1. (Interval.lo i);
    check_f "hi" 2. (Interval.hi i)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "none" true
    (Interval.intersect (Interval.make 0. 1.) (Interval.make 2. 3.) = None)

let test_interval_hull_shift_expand () =
  let a = Interval.make 0. 1. and b = Interval.make 3. 4. in
  let h = Interval.hull a b in
  check_f "hull lo" 0. (Interval.lo h);
  check_f "hull hi" 4. (Interval.hi h);
  let s = Interval.shift 2. a in
  check_f "shift lo" 2. (Interval.lo s);
  let e = Interval.expand_hi 1.5 a in
  check_f "expand_hi" 2.5 (Interval.hi e);
  check_f "expand_hi lo kept" 0. (Interval.lo e);
  let e2 = Interval.expand 1. a in
  check_f "expand lo" (-1.) (Interval.lo e2);
  check_f "expand hi" 2. (Interval.hi e2)

let test_interval_subset () =
  let a = Interval.make 1. 2. and b = Interval.make 0. 3. in
  Alcotest.(check bool) "subset" true (Interval.subset a b);
  Alcotest.(check bool) "not subset" false (Interval.subset b a)

(* ------------------------------------------------------------------ *)
(* Float_cmp                                                          *)
(* ------------------------------------------------------------------ *)

let test_float_cmp () =
  Alcotest.(check bool) "approx" true (F.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "not approx" false (F.approx 1.0 1.1);
  Alcotest.(check bool) "leq" true (F.leq 1.0 1.0);
  Alcotest.(check bool) "geq tol" true (F.geq 0.9999999999 1.0);
  Alcotest.(check bool) "lt strict" true (F.lt 1.0 2.0);
  Alcotest.(check bool) "lt not within eps" false (F.lt 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "gt" true (F.gt 2.0 1.0);
  Alcotest.(check bool) "is_zero" true (F.is_zero 1e-12);
  check_f "clamp low" 0. (F.clamp ~lo:0. ~hi:1. (-5.));
  check_f "clamp high" 1. (F.clamp ~lo:0. ~hi:1. 5.);
  check_f "clamp mid" 0.5 (F.clamp ~lo:0. ~hi:1. 0.5);
  Alcotest.(check int) "compare_approx equal" 0 (F.compare_approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check int) "compare_approx lt" (-1) (F.compare_approx 1.0 2.0)

(* IEEE special values: [approx] must treat equal infinities as equal
   (inf -. inf is NaN, so the subtraction path alone gets this wrong),
   NaN as unequal to everything, and [clamp] must reject NaN rather
   than return a range-dependent bound. *)
let test_float_cmp_special_values () =
  let nan = Float.nan and inf = Float.infinity in
  Alcotest.(check bool) "inf approx inf" true (F.approx inf inf);
  Alcotest.(check bool) "-inf approx -inf" true (F.approx (-.inf) (-.inf));
  Alcotest.(check bool) "inf not approx -inf" false (F.approx inf (-.inf));
  Alcotest.(check bool) "inf not approx finite" false (F.approx inf 1e308);
  Alcotest.(check bool) "nan not approx nan" false (F.approx nan nan);
  Alcotest.(check bool) "nan not approx 0" false (F.approx nan 0.);
  Alcotest.(check bool) "0 not approx nan" false (F.approx 0. nan);
  Alcotest.(check bool) "nan not is_zero" false (F.is_zero nan);
  Alcotest.(check bool) "inf not finite" false (F.is_finite inf);
  Alcotest.(check bool) "nan not finite" false (F.is_finite nan);
  check_f "clamp inf to hi" 1. (F.clamp ~lo:0. ~hi:1. inf);
  check_f "clamp -inf to lo" 0. (F.clamp ~lo:0. ~hi:1. (-.inf));
  Alcotest.(check bool) "clamp nan raises" true
    (try
       ignore (F.clamp ~lo:0. ~hi:1. nan);
       false
     with Invalid_argument _ -> true)

let expect_invalid what f =
  Alcotest.(check bool) what true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* NaN must never enter an interval: a NaN bound or a NaN shift/expand
   amount would silently poison every later comparison. Infinite bounds
   stay legal — half-open delay windows use them. *)
let test_interval_special_values () =
  let nan = Float.nan and inf = Float.infinity in
  expect_invalid "make nan lo" (fun () -> Interval.make nan 1.);
  expect_invalid "make nan hi" (fun () -> Interval.make 0. nan);
  expect_invalid "make nan both" (fun () -> Interval.make nan nan);
  expect_invalid "point nan" (fun () -> Interval.point nan);
  let i = Interval.make 0. 1. in
  expect_invalid "shift nan" (fun () -> Interval.shift nan i);
  expect_invalid "expand nan" (fun () -> Interval.expand nan i);
  expect_invalid "expand negative" (fun () -> Interval.expand (-0.1) i);
  expect_invalid "expand_hi nan" (fun () -> Interval.expand_hi nan i);
  expect_invalid "expand_hi negative" (fun () -> Interval.expand_hi (-0.1) i);
  let half_open = Interval.make 0. inf in
  Alcotest.(check bool) "infinite hi allowed" true
    (Interval.contains half_open 1e300);
  let full = Interval.make (-.inf) inf in
  Alcotest.(check bool) "full line contains 0" true (Interval.contains full 0.);
  check_f "shift keeps inf hi" 1. (Interval.lo (Interval.shift 1. half_open));
  Alcotest.(check bool) "shifted hi still inf" true
    (Interval.hi (Interval.shift 1. half_open) = inf)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_f "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Stats.mean []);
       false
     with Invalid_argument _ -> true)

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  check_f "min" 1. lo;
  check_f "max" 3. hi

let test_stats_median () =
  check_f "odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  check_f "even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ])

let test_stats_stddev () =
  check_f "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_f "known" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_f "p50" 50. (Stats.percentile 50. xs);
  check_f "p100" 100. (Stats.percentile 100. xs);
  check_f "p0" 1. (Stats.percentile 0. xs)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.; 0.1; 0.9; 1.0 ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

(* ------------------------------------------------------------------ *)
(* Text_table                                                         *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Tt.create ~headers:[ ("name", Tt.Left); ("v", Tt.Right) ] in
  Tt.add_row t [ "alpha"; "1" ];
  Tt.add_row t [ "b"; "22" ];
  let s = Tt.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "|");
  Alcotest.(check bool) "contains alpha" true (contains_sub s "alpha")

let test_table_bad_row () =
  let t = Tt.create ~headers:[ ("a", Tt.Left) ] in
  Alcotest.(check bool) "raises" true
    (try
       Tt.add_row t [ "x"; "y" ];
       false
     with Invalid_argument _ -> true)

let test_table_separator_and_center () =
  let t = Tt.create ~headers:[ ("c", Tt.Center) ] in
  Tt.add_row t [ "x" ];
  Tt.add_separator t;
  Tt.add_row t [ "longer" ];
  let s = Tt.render t in
  let lines = String.split_on_char '\n' (String.trim s) in
  (* header, rule, row, separator, row *)
  Alcotest.(check int) "five lines" 5 (List.length lines);
  Alcotest.(check bool) "separator is a rule" true
    (String.length (List.nth lines 3) > 0 && (List.nth lines 3).[1] = '-')

let test_histogram_validation () =
  Alcotest.(check bool) "bins <= 0 raises" true
    (try
       ignore (Stats.histogram ~bins:0 [ 1. ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Stats.histogram ~bins:2 []);
       false
     with Invalid_argument _ -> true)

let test_table_cells () =
  Alcotest.(check string) "float" "1.500" (Tt.cell_f 1.4999999);
  Alcotest.(check string) "float decimals" "1.50" (Tt.cell_f ~decimals:2 1.4999999);
  Alcotest.(check string) "int" "42" (Tt.cell_i 42)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"interval hull contains both" ~count:200
      (pair (pair float float) (pair float float))
      (fun ((a, b), (c, d)) ->
        let i1 = Interval.make (Float.min a b) (Float.max a b) in
        let i2 = Interval.make (Float.min c d) (Float.max c d) in
        let h = Interval.hull i1 i2 in
        Interval.subset i1 h && Interval.subset i2 h);
    Test.make ~name:"rng int uniform-ish" ~count:20 (int_range 2 20) (fun bound ->
        let r = Rng.create 99 in
        let counts = Array.make bound 0 in
        for _ = 1 to bound * 200 do
          let x = Rng.int r bound in
          counts.(x) <- counts.(x) + 1
        done;
        Array.for_all (fun c -> c > 0) counts);
    Test.make ~name:"clamp is idempotent" ~count:200 (triple float float float)
      (fun (lo, hi, x) ->
        let lo, hi = (Float.min lo hi, Float.max lo hi) in
        let c = F.clamp ~lo ~hi x in
        F.clamp ~lo ~hi c = c);
    Test.make ~name:"stats mean within min-max" ~count:200
      (list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.))
      (fun xs ->
        let lo, hi = Stats.min_max xs in
        let m = Stats.mean xs in
        m >= lo -. 1e-9 && m <= hi +. 1e-9);
  ]

let () =
  Alcotest.run "tka_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "float_in bounds" `Quick test_rng_float_in;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basic" `Quick test_interval_basic;
          Alcotest.test_case "invalid" `Quick test_interval_invalid;
          Alcotest.test_case "point" `Quick test_interval_point;
          Alcotest.test_case "contains" `Quick test_interval_contains;
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "intersect" `Quick test_interval_intersect;
          Alcotest.test_case "hull/shift/expand" `Quick test_interval_hull_shift_expand;
          Alcotest.test_case "subset" `Quick test_interval_subset;
          Alcotest.test_case "special values" `Quick test_interval_special_values;
        ] );
      ( "float_cmp",
        [
          Alcotest.test_case "all" `Quick test_float_cmp;
          Alcotest.test_case "special values" `Quick test_float_cmp_special_values;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bad row" `Quick test_table_bad_row;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "separator/center" `Quick test_table_separator_and_center;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
