(* Tests for the linear crosstalk noise analysis: pulses, envelope
   construction from timing windows, per-victim delay noise and the
   iterative fixpoint (including indirect aggressors, Fig. 1 of the
   paper). *)

module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module TW = Tka_sta.Timing_window
module Analysis = Tka_sta.Analysis
module CN = Tka_noise.Coupled_noise
module EB = Tka_noise.Envelope_builder
module VN = Tka_noise.Victim_noise
module Iterate = Tka_noise.Iterate
module Envelope = Tka_waveform.Envelope
module Pulse = Tka_waveform.Pulse
module Transition = Tka_waveform.Transition
module Lib = Tka_cell.Default_lib
module B = Tka_layout.Benchmarks

let check_f6 = Alcotest.(check (float 1e-6))

(* Two parallel inverter chains with couplings between stage nets: the
   canonical aggressor/victim pair. *)
let two_chains ~stages ~coupling =
  let b = Builder.create ~name:"pair" () in
  let ia = Builder.add_input b "ia" in
  let iv = Builder.add_input b "iv" in
  let mk prefix input =
    let prev = ref input in
    let nets = ref [] in
    for i = 1 to stages do
      let n = Builder.add_net b (Printf.sprintf "%s%d" prefix i) in
      ignore
        (Builder.add_gate b
           ~name:(Printf.sprintf "g%s%d" prefix i)
           ~cell:Lib.inverter
           ~inputs:[ ("A", !prev) ]
           ~output:n);
      prev := n;
      nets := n :: !nets
    done;
    List.rev !nets
  in
  let agg = mk "a" ia in
  let vic = mk "v" iv in
  List.iter2
    (fun a v -> ignore (Builder.add_coupling b a v coupling))
    agg vic;
  Builder.mark_output b (List.nth vic (stages - 1));
  Builder.mark_output b (List.nth agg (stages - 1));
  Builder.finalize b

(* ------------------------------------------------------------------ *)
(* Coupled_noise                                                      *)
(* ------------------------------------------------------------------ *)

let test_aggressors_of_victim () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  let ds = CN.aggressors_of_victim nl v1 in
  Alcotest.(check int) "one aggressor" 1 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check int) "victim side" v1 d.CN.dc_victim;
  Alcotest.(check int) "aggressor side" (N.find_net_exn nl "a1").N.net_id
    d.CN.dc_aggressor

let test_directed_id_roundtrip () =
  let nl = two_chains ~stages:3 ~coupling:0.004 in
  Array.iter
    (fun c ->
      List.iter
        (fun victim ->
          let d = CN.directed_of_coupling nl ~victim c.N.coupling_id in
          let d' = CN.of_directed_id nl (CN.directed_id d) in
          Alcotest.(check int) "victim preserved" d.CN.dc_victim d'.CN.dc_victim;
          Alcotest.(check int) "aggressor preserved" d.CN.dc_aggressor
            d'.CN.dc_aggressor;
          Alcotest.(check int) "coupling preserved" d.CN.dc_coupling
            d'.CN.dc_coupling)
        [ c.N.net_a; c.N.net_b ])
    (N.couplings nl)

let test_peak_monotone_in_cap () =
  let nl = two_chains ~stages:1 ~coupling:0.004 in
  let v = (N.find_net_exn nl "v1").N.net_id in
  let p1 = CN.peak nl ~victim:v ~coupling_cap:0.001 ~agg_slew:0.05 in
  let p2 = CN.peak nl ~victim:v ~coupling_cap:0.003 ~agg_slew:0.05 in
  Alcotest.(check bool) "monotone" true (p2 > p1);
  Alcotest.(check bool) "below 1" true (p2 < 1.)

let test_peak_decreases_with_slow_aggressor () =
  let nl = two_chains ~stages:1 ~coupling:0.004 in
  let v = (N.find_net_exn nl "v1").N.net_id in
  let fast = CN.peak nl ~victim:v ~coupling_cap:0.004 ~agg_slew:0.01 in
  let slow = CN.peak nl ~victim:v ~coupling_cap:0.004 ~agg_slew:0.50 in
  Alcotest.(check bool) "slow aggressor couples less" true (slow < fast)

let test_pulse_fields () =
  let nl = two_chains ~stages:1 ~coupling:0.004 in
  let v = (N.find_net_exn nl "v1").N.net_id in
  let d = List.hd (CN.aggressors_of_victim nl v) in
  let p = CN.pulse nl ~agg_slew:0.05 d in
  check_f6 "onset at origin" 0. p.Pulse.onset;
  check_f6 "rise is slew" 0.05 p.Pulse.rise;
  Alcotest.(check bool) "decay positive" true (p.Pulse.decay > 0.)

(* ------------------------------------------------------------------ *)
(* Envelope_builder                                                   *)
(* ------------------------------------------------------------------ *)

let windows_of nl =
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  (topo, Analysis.window a)

let test_envelope_window_sweep () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let _, w = windows_of nl in
  let v2 = (N.find_net_exn nl "v2").N.net_id in
  let d = List.hd (CN.aggressors_of_victim nl v2) in
  let e = EB.of_directed nl ~windows:w d in
  Alcotest.(check bool) "non-zero" false (Envelope.is_zero e);
  (* widened version dominates *)
  let ew = EB.of_directed_widened nl ~windows:w ~extra_lat:0.1 d in
  Alcotest.(check bool) "widened dominates" true (Envelope.encapsulates ew e);
  check_f6 "same peak" (Envelope.peak e) (Envelope.peak ew)

let test_envelope_with_window_override () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let _, w = windows_of nl in
  let v2 = (N.find_net_exn nl "v2").N.net_id in
  let d = List.hd (CN.aggressors_of_victim nl v2) in
  let agg_w = w d.CN.dc_aggressor in
  let same = EB.with_window nl ~window:agg_w d in
  Alcotest.(check bool) "explicit window equals implicit" true
    (Envelope.equal same (EB.of_directed nl ~windows:w d))

let test_unconstrained_covers_constrained () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let _, w = windows_of nl in
  let v2 = (N.find_net_exn nl "v2").N.net_id in
  let d = List.hd (CN.aggressors_of_victim nl v2) in
  let e = EB.of_directed nl ~windows:w d in
  match Envelope.support e with
  | None -> Alcotest.fail "expected support"
  | Some span ->
    let u = EB.unconstrained nl ~windows:w ~span d in
    Alcotest.(check bool) "unconstrained dominates on its span" true
      (Envelope.encapsulates ~interval:span u e)

(* ------------------------------------------------------------------ *)
(* Victim_noise                                                       *)
(* ------------------------------------------------------------------ *)

let test_delay_noise_empty () =
  let nl = two_chains ~stages:1 ~coupling:0.004 in
  let _, w = windows_of nl in
  let v = (N.find_net_exn nl "v1").N.net_id in
  check_f6 "no aggressors no noise" 0. (VN.delay_noise nl ~windows:w ~victim:v [])

let test_delay_noise_upper_bound_dominates () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let _, w = windows_of nl in
  List.iter
    (fun name ->
      let v = (N.find_net_exn nl name).N.net_id in
      let ds = CN.aggressors_of_victim nl v in
      let d = VN.delay_noise nl ~windows:w ~victim:v ds in
      let ub = VN.upper_bound nl ~windows:w ~victim:v ds in
      Alcotest.(check bool) (name ^ " ub >= noise") true (ub >= d -. 1e-9))
    [ "v1"; "v2"; "v3" ]

let test_delay_noise_monotone_in_set () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let _, w = windows_of nl in
  let v = (N.find_net_exn nl "v2").N.net_id in
  let ds = CN.aggressors_of_victim nl v in
  let d1 = VN.delay_noise nl ~windows:w ~victim:v [ List.hd ds ] in
  let dall = VN.delay_noise nl ~windows:w ~victim:v ds in
  Alcotest.(check bool) "superset never smaller" true (dall >= d1 -. 1e-9)

let test_saturation_cap () =
  let victim = Transition.make ~t50:1.0 ~slew:0.05 () in
  (* a preposterous envelope cannot exceed the saturation bound *)
  let huge =
    Envelope.of_pulse
      ~window:(Tka_util.Interval.make 0. 50.)
      (Pulse.make ~onset:0. ~peak:0.95 ~rise:0.05 ~decay:5.)
  in
  let d = VN.delay_noise_of_envelope ~victim huge in
  Alcotest.(check bool) "capped" true
    (d <= (VN.saturation_slews *. 0.05) +. 1e-9);
  Alcotest.(check bool) "at cap" true (d >= (VN.saturation_slews *. 0.05) -. 1e-6)

let test_dominance_interval_anchored () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let _, w = windows_of nl in
  let v = (N.find_net_exn nl "v2").N.net_id in
  let ds = CN.aggressors_of_victim nl v in
  let i = VN.dominance_interval nl ~windows:w ~victim:v ds in
  let t50 = (w v).TW.lat in
  check_f6 "starts at t50" t50 (Tka_util.Interval.lo i);
  Alcotest.(check bool) "positive width" true (Tka_util.Interval.width i > 0.)

(* ------------------------------------------------------------------ *)
(* Iterate                                                            *)
(* ------------------------------------------------------------------ *)

let test_iterate_no_couplings () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let topo = Topo.create nl in
  let r = Iterate.run ~active:(fun _ -> false) topo in
  check_f6 "same as noiseless" (Iterate.noiseless_delay r) (Iterate.circuit_delay r);
  Alcotest.(check bool) "converged" true r.Iterate.converged;
  check_f6 "no noise" 0. (Iterate.total_delay_noise r)

let test_iterate_adds_noise () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let r = Iterate.run topo in
  Alcotest.(check bool) "converged" true r.Iterate.converged;
  Alcotest.(check bool) "noisy >= noiseless" true
    (Iterate.circuit_delay r >= Iterate.noiseless_delay r);
  Alcotest.(check bool) "strictly noisy" true (Iterate.total_delay_noise r > 0.)

let test_iterate_subset_bounded_by_full () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let full = Iterate.run topo in
  let one = Iterate.run ~active:(fun d -> CN.directed_id d = 0) topo in
  Alcotest.(check bool) "subset noise <= full noise" true
    (Iterate.circuit_delay one <= Iterate.circuit_delay full +. 1e-9)

let test_iterate_all_overlap_start_agrees () =
  (* both starting points converge to comparable fixpoints; the
     descending one can only be >= the ascending one *)
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let up = Iterate.run ~mode:Iterate.From_noiseless topo in
  let down = Iterate.run ~mode:Iterate.From_all_overlap topo in
  Alcotest.(check bool) "both converged" true
    (up.Iterate.converged && down.Iterate.converged);
  Alcotest.(check bool) "lattice order" true
    (Iterate.circuit_delay down >= Iterate.circuit_delay up -. 1e-6)

let test_iterate_net_noise_nonneg () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let r = Iterate.run topo in
  for v = 0 to N.num_nets nl - 1 do
    Alcotest.(check bool) "nonneg" true (Iterate.net_noise r v >= 0.)
  done

(* Fig. 1: a3 -> a2 -> a1 -> v1 indirect chain. The victim's noise
   grows when indirect aggressors are added because they widen the
   primary aggressor's window across iterations. *)
let indirect_chain () =
  let b = Builder.create ~name:"fig1" () in
  let i1 = Builder.add_input b "i1" in
  let i2 = Builder.add_input b "i2" in
  let i3 = Builder.add_input b "i3" in
  let iv = Builder.add_input b "iv" in
  (* lightly loaded nets with strong drivers: coupling ratios high
     enough that the victim crossing rides the aggressor envelope, so a
     window extension visibly increases delay noise *)
  let a3 = Builder.add_net b ~wire_cap:0.001 "a3" in
  let a2 = Builder.add_net b ~wire_cap:0.001 "a2" in
  let a1 = Builder.add_net b ~wire_cap:0.001 "a1" in
  let v1 = Builder.add_net b ~wire_cap:0.001 "v1" in
  let x4 = Lib.find_exn "INV_X4" in
  ignore (Builder.add_gate b ~name:"ga3" ~cell:x4 ~inputs:[ ("A", i3) ] ~output:a3);
  ignore (Builder.add_gate b ~name:"ga2" ~cell:x4 ~inputs:[ ("A", i2) ] ~output:a2);
  ignore (Builder.add_gate b ~name:"ga1" ~cell:x4 ~inputs:[ ("A", i1) ] ~output:a1);
  ignore (Builder.add_gate b ~name:"gv1" ~cell:Lib.inverter ~inputs:[ ("A", iv) ] ~output:v1);
  Builder.mark_output b v1;
  Builder.mark_output b a1;
  Builder.mark_output b a2;
  Builder.mark_output b a3;
  let c32 = Builder.add_coupling b a3 a2 0.008 in
  let c21 = Builder.add_coupling b a2 a1 0.008 in
  let c1v = Builder.add_coupling b a1 v1 0.008 in
  (Builder.finalize b, c32, c21, c1v)

let test_indirect_aggressors_increase_noise () =
  let nl, c32, c21, c1v = indirect_chain () in
  let topo = Topo.create nl in
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  let noise_with active =
    let r = Iterate.run ~active topo in
    Iterate.net_noise r v1
  in
  let only_primary = noise_with (fun d -> d.CN.dc_coupling = c1v) in
  let with_secondary =
    noise_with (fun d -> d.CN.dc_coupling = c1v || d.CN.dc_coupling = c21)
  in
  let with_tertiary =
    noise_with (fun d ->
        d.CN.dc_coupling = c1v || d.CN.dc_coupling = c21 || d.CN.dc_coupling = c32)
  in
  (* the secondary aggressor strictly increases the victim's noise by
     widening the primary's window (needs an extra noise iteration);
     deeper links attenuate, so the tertiary is only required not to
     hurt *)
  Alcotest.(check bool) "secondary strictly helps" true
    (with_secondary > only_primary +. 1e-6);
  Alcotest.(check bool) "tertiary never hurts" true
    (with_tertiary >= with_secondary -. 1e-9)

let test_iterate_converges_on_benchmark () =
  let nl = Option.get (B.by_name "i1") in
  let topo = Topo.create nl in
  let r = Iterate.run topo in
  Alcotest.(check bool) "converged" true r.Iterate.converged;
  Alcotest.(check bool) "few sweeps" true (r.Iterate.iterations <= 12);
  Alcotest.(check bool) "noise fraction sane" true
    (let f = Iterate.total_delay_noise r /. Iterate.noiseless_delay r in
     f > 0.01 && f < 0.6)

(* ------------------------------------------------------------------ *)
(* Glitch screening                                                   *)
(* ------------------------------------------------------------------ *)

module Glitch = Tka_noise.Glitch

let test_glitch_peak_sum () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let _, w = windows_of nl in
  let v = (N.find_net_exn nl "v1").N.net_id in
  let expect =
    List.fold_left
      (fun acc d ->
        let aw = w d.CN.dc_aggressor in
        acc +. (CN.pulse nl ~agg_slew:aw.TW.slew_late d).Pulse.peak)
      0.
      (CN.aggressors_of_victim nl v)
  in
  check_f6 "sum of pulse peaks" expect (Glitch.peak_noise nl ~windows:w v)

let test_glitch_check_threshold () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let topo = Topo.create nl in
  (* an absurdly low margin flags every coupled net, a high one none *)
  let all = Glitch.check ~margin:1e-6 topo in
  Alcotest.(check bool) "low margin flags" true (List.length all > 0);
  let none = Glitch.check ~margin:0.99 topo in
  Alcotest.(check int) "high margin clean" 0 (List.length none);
  (* worst first *)
  let rec desc = function
    | a :: (b :: _ as tl) -> a.Glitch.gl_peak >= b.Glitch.gl_peak && desc tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (desc all)

let test_glitch_default_margin_on_benchmark () =
  let nl = Option.get (B.by_name "i1") in
  let topo = Topo.create nl in
  let v = Glitch.check topo in
  (* the calibrated benchmarks are mostly clean but may have a few hot
     nets; every report must exceed the margin it was checked against *)
  List.iter
    (fun x ->
      Alcotest.(check bool) "peak above margin" true
        (x.Glitch.gl_peak > x.Glitch.gl_margin))
    v

(* ------------------------------------------------------------------ *)
(* Xtalk_report                                                       *)
(* ------------------------------------------------------------------ *)

module Xr = Tka_noise.Xtalk_report

let test_xtalk_breakdown () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let analysis = Iterate.run topo in
  let v2 = (N.find_net_exn nl "v2").N.net_id in
  let r = Xr.victim ~analysis v2 in
  Alcotest.(check int) "one aggressor" 1 (List.length r.Xr.xr_contributions);
  List.iter
    (fun c ->
      Alcotest.(check bool) "alone <= total" true (c.Xr.xc_alone <= r.Xr.xr_total +. 1e-9);
      Alcotest.(check bool) "incremental <= total" true
        (c.Xr.xc_incremental <= r.Xr.xr_total +. 1e-9);
      Alcotest.(check bool) "cap recorded" true (c.Xr.xc_cap > 0.))
    r.Xr.xr_contributions

let test_xtalk_single_aggressor_accounts_all () =
  (* with exactly one aggressor, alone = incremental = total *)
  let nl = two_chains ~stages:1 ~coupling:0.006 in
  let topo = Topo.create nl in
  let analysis = Iterate.run topo in
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  let r = Xr.victim ~analysis v1 in
  (match r.Xr.xr_contributions with
  | [ c ] ->
    check_f6 "alone = total" r.Xr.xr_total c.Xr.xc_alone;
    check_f6 "incremental = total" r.Xr.xr_total c.Xr.xc_incremental
  | _ -> Alcotest.fail "expected one contribution")

let test_xtalk_worst_victims () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let analysis = Iterate.run topo in
  let worst = Xr.worst_victims ~count:3 analysis in
  Alcotest.(check bool) "some victims" true (worst <> []);
  Alcotest.(check bool) "at most 3" true (List.length worst <= 3);
  let rec desc = function
    | a :: (b :: _ as tl) -> a.Xr.xr_total >= b.Xr.xr_total -. 1e-9 && desc tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (desc worst);
  (* render smoke *)
  let s = Xr.render nl (List.hd worst) in
  Alcotest.(check bool) "render mentions victim" true (String.length s > 10)

(* ------------------------------------------------------------------ *)
(* False aggressors                                                   *)
(* ------------------------------------------------------------------ *)

module Fa = Tka_noise.False_aggressors

(* aggressor far earlier than the victim: its pulse is long gone *)
let far_apart () =
  let b = Builder.create ~name:"far" () in
  let ia = Builder.add_input b "ia" in
  let iv = Builder.add_input b "iv" in
  let agg = Builder.add_net b "agg" in
  (* the victim sits behind a 6-inverter chain, far later than agg *)
  let prev = ref iv in
  for i = 1 to 6 do
    let n = Builder.add_net b (Printf.sprintf "d%d" i) in
    ignore
      (Builder.add_gate b ~name:(Printf.sprintf "gd%d" i) ~cell:Lib.inverter
         ~inputs:[ ("A", !prev) ] ~output:n);
    prev := n
  done;
  let vic = Builder.add_net b "vic" in
  ignore (Builder.add_gate b ~name:"ga" ~cell:Lib.inverter ~inputs:[ ("A", ia) ] ~output:agg);
  ignore (Builder.add_gate b ~name:"gv" ~cell:Lib.inverter ~inputs:[ ("A", !prev) ] ~output:vic);
  Builder.mark_output b vic;
  Builder.mark_output b agg;
  ignore (Builder.add_coupling b agg vic 0.004);
  Builder.finalize b

let test_false_aggressor_detected () =
  let nl = far_apart () in
  let _, w = windows_of nl in
  let c = Fa.classify ~windows:w nl in
  (* agg -> vic direction is false (pulse ends long before the victim
     switches); vic -> agg direction is also false (pulse comes after
     agg has settled... here vic switches later, so it is TRUE for agg?
     no: a disturbance after agg's sensitive interval cannot delay it *)
  let vic = (N.find_net_exn nl "vic").N.net_id in
  Alcotest.(check bool) "agg->vic classified false" true
    (List.exists (fun d -> d.CN.dc_victim = vic) c.Fa.fa_false);
  Alcotest.(check bool) "fraction positive" true (Fa.false_fraction c > 0.)

let test_false_aggressors_sound () =
  (* every coupling classified false really contributes zero noise *)
  let nl = Option.get (B.by_name "i1") in
  let _, w = windows_of nl in
  let c = Fa.classify ~margin:0. ~windows:w nl in
  List.iter
    (fun d ->
      let noise =
        Tka_noise.Victim_noise.delay_noise nl ~windows:w
          ~victim:d.CN.dc_victim [ d ]
      in
      Alcotest.(check (float 1e-9)) "false means zero" 0. noise)
    c.Fa.fa_false

let test_false_aggressors_near_pairs_true () =
  (* adjacent same-timing chains: couplings are live *)
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let _, w = windows_of nl in
  let c = Fa.classify ~windows:w nl in
  Alcotest.(check bool) "some true aggressors" true (List.length c.Fa.fa_true > 0)

(* ------------------------------------------------------------------ *)
(* Monte-Carlo alignment sampling                                     *)
(* ------------------------------------------------------------------ *)

module Mc = Tka_noise.Monte_carlo

let test_monte_carlo_under_bound () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let _, w = windows_of nl in
  let rng = Tka_util.Rng.create 5 in
  List.iter
    (fun name ->
      let v = (N.find_net_exn nl name).N.net_id in
      let s = Mc.sample_victim ~rng ~samples:200 ~windows:w nl v in
      Alcotest.(check bool) (name ^ " max <= bound") true
        (s.Mc.mc_max <= s.Mc.mc_bound +. 1e-9);
      Alcotest.(check bool) "mean <= max" true (s.Mc.mc_mean <= s.Mc.mc_max +. 1e-12);
      Alcotest.(check bool) "p95 between" true
        (s.Mc.mc_p95 >= s.Mc.mc_mean -. 1e-9 && s.Mc.mc_p95 <= s.Mc.mc_max +. 1e-9))
    [ "v1"; "v2"; "v3" ]

let test_monte_carlo_point_window_tight () =
  (* with degenerate windows there is only one alignment: sampling must
     reproduce the bound exactly *)
  let nl = two_chains ~stages:1 ~coupling:0.006 in
  let _, w = windows_of nl in
  let v = (N.find_net_exn nl "v1").N.net_id in
  let rng = Tka_util.Rng.create 6 in
  let s = Mc.sample_victim ~rng ~samples:20 ~windows:w nl v in
  Alcotest.(check (float 1e-6)) "tight" s.Mc.mc_bound s.Mc.mc_max

let test_monte_carlo_validation () =
  Alcotest.(check bool) "samples > 0 required" true
    (let nl = two_chains ~stages:1 ~coupling:0.004 in
     let _, w = windows_of nl in
     try
       ignore
         (Mc.sample_victim ~rng:(Tka_util.Rng.create 1) ~samples:0 ~windows:w nl 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Path noise                                                         *)
(* ------------------------------------------------------------------ *)

module Pn = Tka_noise.Path_noise

let test_path_noise_breakdown () =
  let nl = two_chains ~stages:3 ~coupling:0.006 in
  let topo = Topo.create nl in
  let it = Iterate.run topo in
  let p = Pn.worst_path it in
  Alcotest.(check bool) "has stages" true (List.length p.Pn.pn_stages >= 3);
  (* arrivals monotone along the path, noisy >= noiseless at each net *)
  let rec mono = function
    | a :: (b :: _ as tl) ->
      a.Pn.ps_arrival_noisy <= b.Pn.ps_arrival_noisy +. 1e-9 && mono tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone arrivals" true (mono p.Pn.pn_stages);
  List.iter
    (fun s ->
      Alcotest.(check bool) "noisy >= noiseless" true
        (s.Pn.ps_arrival_noisy >= s.Pn.ps_arrival_noiseless -. 1e-9);
      Alcotest.(check bool) "own noise nonneg" true (s.Pn.ps_own_noise >= 0.))
    p.Pn.pn_stages;
  Alcotest.(check bool) "total positive" true (Pn.total_path_noise p > 0.);
  (* the path's endpoint arrival is the noisy circuit delay *)
  check_f6 "endpoint = circuit delay" (Iterate.circuit_delay it) p.Pn.pn_noisy_arrival;
  (* render smoke *)
  Alcotest.(check bool) "render" true (String.length (Pn.render nl p) > 20)

let test_path_noise_quiet_design () =
  let nl = two_chains ~stages:2 ~coupling:0.004 in
  let topo = Topo.create nl in
  let it = Iterate.run ~active:(fun _ -> false) topo in
  let p = Pn.worst_path it in
  check_f6 "no noise anywhere" 0. (Pn.total_path_noise p)

let () =
  Alcotest.run "tka_noise"
    [
      ( "coupled_noise",
        [
          Alcotest.test_case "aggressors of victim" `Quick test_aggressors_of_victim;
          Alcotest.test_case "directed id roundtrip" `Quick test_directed_id_roundtrip;
          Alcotest.test_case "peak monotone" `Quick test_peak_monotone_in_cap;
          Alcotest.test_case "slow aggressor" `Quick
            test_peak_decreases_with_slow_aggressor;
          Alcotest.test_case "pulse fields" `Quick test_pulse_fields;
        ] );
      ( "envelope_builder",
        [
          Alcotest.test_case "window sweep" `Quick test_envelope_window_sweep;
          Alcotest.test_case "window override" `Quick test_envelope_with_window_override;
          Alcotest.test_case "unconstrained" `Quick test_unconstrained_covers_constrained;
        ] );
      ( "victim_noise",
        [
          Alcotest.test_case "empty" `Quick test_delay_noise_empty;
          Alcotest.test_case "upper bound" `Quick test_delay_noise_upper_bound_dominates;
          Alcotest.test_case "monotone in set" `Quick test_delay_noise_monotone_in_set;
          Alcotest.test_case "saturation" `Quick test_saturation_cap;
          Alcotest.test_case "dominance interval" `Quick test_dominance_interval_anchored;
        ] );
      ( "false_aggressors",
        [
          Alcotest.test_case "detects far-apart" `Quick test_false_aggressor_detected;
          Alcotest.test_case "sound on i1" `Quick test_false_aggressors_sound;
          Alcotest.test_case "near pairs stay true" `Quick
            test_false_aggressors_near_pairs_true;
        ] );
      ( "monte_carlo",
        [
          Alcotest.test_case "under bound" `Quick test_monte_carlo_under_bound;
          Alcotest.test_case "point window tight" `Quick
            test_monte_carlo_point_window_tight;
          Alcotest.test_case "validation" `Quick test_monte_carlo_validation;
        ] );
      ( "path_noise",
        [
          Alcotest.test_case "breakdown" `Quick test_path_noise_breakdown;
          Alcotest.test_case "quiet design" `Quick test_path_noise_quiet_design;
        ] );
      ( "xtalk_report",
        [
          Alcotest.test_case "breakdown" `Quick test_xtalk_breakdown;
          Alcotest.test_case "single aggressor" `Quick
            test_xtalk_single_aggressor_accounts_all;
          Alcotest.test_case "worst victims" `Quick test_xtalk_worst_victims;
        ] );
      ( "glitch",
        [
          Alcotest.test_case "peak sum" `Quick test_glitch_peak_sum;
          Alcotest.test_case "threshold" `Quick test_glitch_check_threshold;
          Alcotest.test_case "benchmark margins" `Quick
            test_glitch_default_margin_on_benchmark;
        ] );
      ( "iterate",
        [
          Alcotest.test_case "no couplings" `Quick test_iterate_no_couplings;
          Alcotest.test_case "adds noise" `Quick test_iterate_adds_noise;
          Alcotest.test_case "subset bounded" `Quick test_iterate_subset_bounded_by_full;
          Alcotest.test_case "all-overlap start" `Quick
            test_iterate_all_overlap_start_agrees;
          Alcotest.test_case "net noise nonneg" `Quick test_iterate_net_noise_nonneg;
          Alcotest.test_case "indirect aggressors (Fig 1)" `Quick
            test_indirect_aggressors_increase_noise;
          Alcotest.test_case "benchmark convergence" `Quick
            test_iterate_converges_on_benchmark;
        ] );
    ]
