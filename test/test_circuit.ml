(* Tests for netlist construction, topological utilities and the two
   interchange parsers. *)

module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module Nf = Tka_circuit.Netlist_format
module Spef = Tka_circuit.Spef_lite
module Dot = Tka_circuit.Dot
module Cs = Tka_circuit.Circuit_stats
module Lib = Tka_cell.Default_lib

let check_f = Alcotest.(check (float 1e-9))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* a -> inv -> n1 -> nand2(n1, b) -> n2 (output), coupling n1~n2 *)
let small () =
  let b = Builder.create ~name:"small" () in
  let a = Builder.add_input b "a" in
  let bb = Builder.add_input b "b" in
  let n1 = Builder.add_net b ~wire_cap:0.01 ~wire_res:1.0 "n1" in
  let n2 = Builder.add_net b "n2" in
  let g1 =
    Builder.add_gate b ~name:"g1" ~cell:Lib.inverter ~inputs:[ ("A", a) ]
      ~output:n1
  in
  let g2 =
    Builder.add_gate b ~name:"g2" ~cell:(Lib.find_exn "NAND2_X1")
      ~inputs:[ ("A", n1); ("B", bb) ]
      ~output:n2
  in
  Builder.mark_output b n2;
  let c = Builder.add_coupling b n1 n2 0.004 in
  (Builder.finalize b, a, bb, n1, n2, g1, g2, c)

(* ------------------------------------------------------------------ *)
(* Builder and netlist                                                *)
(* ------------------------------------------------------------------ *)

let test_build_small () =
  let nl, a, _, n1, n2, g1, _, c = small () in
  Alcotest.(check int) "nets" 4 (N.num_nets nl);
  Alcotest.(check int) "gates" 2 (N.num_gates nl);
  Alcotest.(check int) "couplings" 1 (N.num_couplings nl);
  Alcotest.(check int) "inputs" 2 (List.length (N.inputs nl));
  Alcotest.(check (list int)) "outputs" [ n2 ] (N.outputs nl);
  Alcotest.(check bool) "a is PI" true ((N.net nl a).N.driver = N.Primary_input);
  (match (N.net nl n1).N.driver with
  | N.Driven_by g -> Alcotest.(check int) "driver" g1 g
  | N.Primary_input -> Alcotest.fail "n1 should be driven");
  Alcotest.(check int) "n1 sinks" 1 (List.length (N.net nl n1).N.sinks);
  Alcotest.(check int) "coupling id" 0 c

let test_netlist_lookup () =
  let nl, _, _, n1, _, _, _, _ = small () in
  (match N.find_net nl "n1" with
  | Some n -> Alcotest.(check int) "by name" n1 n.N.net_id
  | None -> Alcotest.fail "n1 not found");
  Alcotest.(check bool) "missing" true (N.find_net nl "zz" = None);
  Alcotest.(check bool) "gate by name" true (N.find_gate nl "g2" <> None);
  Alcotest.(check bool) "find_net_exn raises" true
    (try
       ignore (N.find_net_exn nl "zz");
       false
     with Not_found -> true)

let test_netlist_caps () =
  let nl, _, _, n1, n2, _, _, _ = small () in
  check_f "wire cap" 0.01 (N.net nl n1).N.wire_cap;
  (* n1 feeds NAND2_X1 pin A *)
  check_f "pin cap" 0.0034 (N.total_pin_cap nl n1);
  check_f "ground = wire + pins" (0.01 +. 0.0034) (N.ground_cap nl n1);
  check_f "coupling" 0.004 (N.total_coupling_cap nl n1);
  check_f "total" (0.01 +. 0.0034 +. 0.004) (N.total_cap nl n1);
  check_f "n2 no pins" 0. (N.total_pin_cap nl n2)

let test_coupling_partner () =
  let nl, _, _, n1, n2, _, _, c = small () in
  Alcotest.(check int) "partner of n1" n2 (N.coupling_partner nl c n1);
  Alcotest.(check int) "partner of n2" n1 (N.coupling_partner nl c n2);
  Alcotest.(check bool) "bad net raises" true
    (try
       ignore (N.coupling_partner nl c 0);
       false
     with Invalid_argument _ -> true)

let test_fan_queries () =
  let nl, a, bb, n1, n2, _, _, _ = small () in
  Alcotest.(check (list int)) "fanin of n2" [ n1; bb ] (N.fanin_nets nl n2);
  Alcotest.(check (list int)) "fanout of a" [ n1 ] (N.fanout_nets nl a);
  Alcotest.(check (list int)) "fanin of PI" [] (N.fanin_nets nl a)

let expect_invalid f =
  try
    ignore (f ());
    Alcotest.fail "expected Builder.Invalid"
  with Builder.Invalid _ -> ()

let test_builder_duplicate_net () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      ignore (Builder.add_input b "x");
      Builder.add_net b "x")

let test_builder_duplicate_gate () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      let n1 = Builder.add_net b "n1" in
      let n2 = Builder.add_net b "n2" in
      ignore (Builder.add_gate b ~name:"g" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1);
      Builder.add_gate b ~name:"g" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n2)

let test_builder_multiple_drivers () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      let n1 = Builder.add_net b "n1" in
      ignore (Builder.add_gate b ~name:"g1" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1);
      Builder.add_gate b ~name:"g2" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1)

let test_builder_drive_input () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      let x = Builder.add_input b "x" in
      Builder.add_gate b ~name:"g" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:x)

let test_builder_wrong_pins () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      let n1 = Builder.add_net b "n1" in
      Builder.add_gate b ~name:"g" ~cell:(Lib.find_exn "NAND2_X1")
        ~inputs:[ ("A", a) ] ~output:n1)

let test_builder_undriven_net () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      let n1 = Builder.add_net b "n1" in
      let orphan = Builder.add_net b "orphan" in
      ignore orphan;
      ignore (Builder.add_gate b ~name:"g" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1);
      Builder.finalize b)

let test_builder_cycle () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let n1 = Builder.add_net b "n1" in
      let n2 = Builder.add_net b "n2" in
      ignore (Builder.add_gate b ~name:"g1" ~cell:Lib.inverter ~inputs:[ ("A", n2) ] ~output:n1);
      ignore (Builder.add_gate b ~name:"g2" ~cell:Lib.inverter ~inputs:[ ("A", n1) ] ~output:n2);
      Builder.finalize b)

let test_builder_self_coupling () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      Builder.add_coupling b a a 0.001)

let test_builder_negative_coupling () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      let a = Builder.add_input b "a" in
      let x = Builder.add_input b "x" in
      Builder.add_coupling b a x (-0.001))

let test_builder_implicit_outputs () =
  let b = Builder.create () in
  let a = Builder.add_input b "a" in
  let n1 = Builder.add_net b "n1" in
  ignore (Builder.add_gate b ~name:"g" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1);
  let nl = Builder.finalize b in
  Alcotest.(check (list int)) "sink-less is output" [ n1 ] (N.outputs nl)

let test_builder_set_wire () =
  let b = Builder.create () in
  let a = Builder.add_input b "a" in
  Builder.set_wire b a ~cap:0.123 ~res:4.5;
  let n1 = Builder.add_net b "n1" in
  ignore (Builder.add_gate b ~name:"g" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1);
  let nl = Builder.finalize b in
  check_f "cap" 0.123 (N.net nl a).N.wire_cap;
  check_f "res" 4.5 (N.net nl a).N.wire_res

(* ------------------------------------------------------------------ *)
(* Topo                                                                *)
(* ------------------------------------------------------------------ *)

let chain n =
  let b = Builder.create ~name:"chain" () in
  let first = Builder.add_input b "in" in
  let prev = ref first in
  for i = 1 to n do
    let net = Builder.add_net b (Printf.sprintf "c%d" i) in
    ignore
      (Builder.add_gate b
         ~name:(Printf.sprintf "g%d" i)
         ~cell:Lib.inverter
         ~inputs:[ ("A", !prev) ]
         ~output:net);
    prev := net
  done;
  Builder.mark_output b !prev;
  Builder.finalize b

let test_topo_order_respects_edges () =
  let nl, _, _, _, _, _, _, _ = small () in
  let topo = Topo.create nl in
  let pos = Array.make (N.num_nets nl) 0 in
  Array.iteri (fun i nid -> pos.(nid) <- i) (Topo.net_order topo);
  Array.iter
    (fun g ->
      List.iter
        (fun (_, src) ->
          Alcotest.(check bool) "fanin before fanout" true
            (pos.(src) < pos.(g.N.fanout)))
        g.N.fanin)
    (N.gates nl)

let test_topo_levels_chain () =
  let nl = chain 5 in
  let topo = Topo.create nl in
  Alcotest.(check int) "depth" 5 (Topo.max_level topo);
  Alcotest.(check int) "PI level" 0 (Topo.net_level topo (List.hd (N.inputs nl)));
  Alcotest.(check int) "output level" 5
    (Topo.net_level topo (List.hd (N.outputs nl)))

let test_topo_fanin_cone () =
  let nl = chain 4 in
  let topo = Topo.create nl in
  let out = List.hd (N.outputs nl) in
  let pi = List.hd (N.inputs nl) in
  Alcotest.(check bool) "PI in cone" true (Topo.in_fanin_cone topo ~cone_of:out pi);
  Alcotest.(check bool) "self in cone" true (Topo.in_fanin_cone topo ~cone_of:out out);
  Alcotest.(check bool) "out not in PI cone" false
    (Topo.in_fanin_cone topo ~cone_of:pi out)

let test_topo_fanin_cone_couplings () =
  let nl, _, _, n1, n2, _, _, c = small () in
  let topo = Topo.create nl in
  (* the only coupling touches n2 itself, so it is excluded for n2... *)
  Alcotest.(check (list int)) "excluded for n2" [] (Topo.fanin_cone_couplings topo n2);
  ignore n1;
  ignore c

let test_topo_reachable_outputs () =
  let nl, a, _, _, n2, _, _, _ = small () in
  let topo = Topo.create nl in
  Alcotest.(check (list int)) "a reaches out" [ n2 ] (Topo.sinks_reachable_from topo a)

let test_topo_cone_shards () =
  (* three disjoint chains, two of them coupled together: the sharder
     must merge the coupled pair and keep the third chain separate *)
  let b = Builder.create ~name:"shards" () in
  let mk_chain tag n =
    let prev = ref (Builder.add_input b (tag ^ "_in")) in
    let nets = ref [ !prev ] in
    for i = 1 to n do
      let net = Builder.add_net b (Printf.sprintf "%s_n%d" tag i) in
      ignore
        (Builder.add_gate b
           ~name:(Printf.sprintf "%s_g%d" tag i)
           ~cell:Lib.inverter
           ~inputs:[ ("A", !prev) ]
           ~output:net);
      prev := net;
      nets := net :: !nets
    done;
    Builder.mark_output b !prev;
    List.rev !nets
  in
  let ca = mk_chain "a" 4 in
  let cb = mk_chain "b" 4 in
  let cc = mk_chain "c" 4 in
  ignore (Builder.add_coupling b (List.nth ca 2) (List.nth cb 2) 0.01);
  let nl = Builder.finalize b in
  let topo = Topo.create nl in
  let shards = Topo.cone_shards topo in
  Alcotest.(check int) "two shards" 2 (Array.length shards);
  (* partition: every net exactly once *)
  let seen = Array.make (N.num_nets nl) 0 in
  Array.iter (Array.iter (fun nid -> seen.(nid) <- seen.(nid) + 1)) shards;
  Array.iter (fun c -> Alcotest.(check int) "each net once" 1 c) seen;
  (* closure: both endpoints of the coupling land in the same shard,
     and the uncoupled chain is alone in its own *)
  let shard_of = Array.make (N.num_nets nl) (-1) in
  Array.iteri
    (fun s nets -> Array.iter (fun nid -> shard_of.(nid) <- s) nets)
    shards;
  Alcotest.(check bool) "coupled chains share a shard" true
    (shard_of.(List.hd ca) = shard_of.(List.hd cb));
  Alcotest.(check bool) "third chain is separate" true
    (shard_of.(List.hd cc) <> shard_of.(List.hd ca));
  (* order: within a shard, nets appear in net_order position order *)
  let pos = Array.make (N.num_nets nl) 0 in
  Array.iteri (fun i nid -> pos.(nid) <- i) (Topo.net_order topo);
  Array.iter
    (fun nets ->
      for i = 1 to Array.length nets - 1 do
        Alcotest.(check bool) "net_order-monotone inside shard" true
          (pos.(nets.(i - 1)) < pos.(nets.(i)))
      done)
    shards

(* ------------------------------------------------------------------ *)
(* Netlist text format                                                *)
(* ------------------------------------------------------------------ *)

let test_format_roundtrip () =
  let nl, _, _, _, _, _, _, _ = small () in
  let text = Nf.print nl in
  let nl2 = Nf.parse ~lookup:Lib.find text in
  Alcotest.(check string) "name" (N.name nl) (N.name nl2);
  Alcotest.(check int) "nets" (N.num_nets nl) (N.num_nets nl2);
  Alcotest.(check int) "gates" (N.num_gates nl) (N.num_gates nl2);
  Alcotest.(check int) "couplings" (N.num_couplings nl) (N.num_couplings nl2);
  Alcotest.(check string) "stable fixpoint" text (Nf.print nl2)

let test_format_parse_minimal () =
  let src =
    "circuit t\n# comment line\ninput a\nnet n1 cap=0.01 res=0.5\ngate g1 \
     INV_X1 A=a Y=n1\noutput n1\n"
  in
  let nl = Nf.parse ~lookup:Lib.find src in
  Alcotest.(check int) "gates" 1 (N.num_gates nl);
  check_f "cap" 0.01 (N.find_net_exn nl "n1").N.wire_cap;
  check_f "res" 0.5 (N.find_net_exn nl "n1").N.wire_res

let expect_parse_error src =
  try
    ignore (Nf.parse ~lookup:Lib.find src);
    Alcotest.fail "expected Parse_error"
  with Nf.Parse_error { line; _ } ->
    Alcotest.(check bool) "line positive" true (line >= 0)

let test_format_errors () =
  expect_parse_error "input a\ninput a\n";
  expect_parse_error "gate g1 INV_X1 A=a Y=n1\n";
  expect_parse_error "input a\nnet n1\ngate g1 NOPE A=a Y=n1\n";
  expect_parse_error "input a\nnet n1\ngate g1 INV_X1 A=a\n";
  expect_parse_error "frobnicate x\n";
  expect_parse_error "input a\nnet n1 cap=abc\n";
  expect_parse_error "input a\ncircuit late\n";
  expect_parse_error "coupling a b cap=0.1\n"

let test_format_comments_and_blank () =
  let src = "\n\n# full comment\ncircuit c\ninput a # trailing comment\n" in
  let nl = Nf.parse ~lookup:Lib.find src in
  Alcotest.(check string) "name" "c" (N.name nl)

(* ------------------------------------------------------------------ *)
(* SPEF-lite                                                          *)
(* ------------------------------------------------------------------ *)

let test_spef_roundtrip () =
  let nl, _, _, _, _, _, _, _ = small () in
  let text = Spef.print nl in
  let ann = Spef.parse text in
  let nl2 = Spef.apply ann nl in
  Alcotest.(check int) "couplings preserved" (N.num_couplings nl) (N.num_couplings nl2);
  Array.iter
    (fun n ->
      let n2 = N.find_net_exn nl2 n.N.net_name in
      check_f (n.N.net_name ^ " cap") n.N.wire_cap n2.N.wire_cap;
      check_f (n.N.net_name ^ " res") n.N.wire_res n2.N.wire_res)
    (N.nets nl)

let test_spef_parse_fields () =
  let src =
    {|*SPEF "IEEE 1481-lite"
*DESIGN demo
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 KOHM

*D_NET n1 0.014
*RES 1.3
*CAP
1 n1 0.0093
2 n1 n2 0.0030
*END

*D_NET n2 0.02
*CAP
1 n2 0.0170
2 n2 n1 0.0030
*END
|}
  in
  let ann = Spef.parse src in
  Alcotest.(check (option string)) "design" (Some "demo") ann.Spef.design;
  Alcotest.(check int) "grounds" 2 (List.length ann.Spef.ground);
  (* the duplicated coupling listing collapses to one *)
  Alcotest.(check int) "couplings deduped" 1 (List.length ann.Spef.couplings)

let expect_spef_error src =
  try
    ignore (Spef.parse src);
    Alcotest.fail "expected Parse_error"
  with Spef.Parse_error _ -> ()

let test_spef_errors () =
  expect_spef_error "*CAP\n";
  expect_spef_error "*END\n";
  expect_spef_error "*D_NET a 1\n*D_NET b 1\n";
  expect_spef_error "*D_NET a 1\n*CAP\n1 b 0.1\n*END\n";
  expect_spef_error "*D_NET a x\n"

let test_spef_apply_unknown_net () =
  let nl, _, _, _, _, _, _, _ = small () in
  let ann = { Spef.design = None; ground = []; couplings = [ ("zz", "n1", 0.001) ] } in
  match Spef.apply ann nl with
  | _ -> Alcotest.fail "expected Link_error"
  | exception N.Link_error { source; message } ->
    Alcotest.(check string) "source" "spef" source;
    Alcotest.(check bool) "names the net" true (contains_sub message "zz")

(* ------------------------------------------------------------------ *)
(* Transform                                                          *)
(* ------------------------------------------------------------------ *)

module T = Tka_circuit.Transform

let test_transform_identity () =
  let nl, _, _, _, _, _, _, _ = small () in
  let nl2 = T.map nl in
  Alcotest.(check string) "identical print" (Nf.print nl) (Nf.print nl2)

let test_transform_remove_couplings () =
  let nl, _, _, _, _, _, _, c = small () in
  let nl2 = T.remove_couplings nl [ c ] in
  Alcotest.(check int) "coupling gone" 0 (N.num_couplings nl2);
  Alcotest.(check string) "renamed" "small_fixed" (N.name nl2);
  Alcotest.(check int) "structure kept" (N.num_gates nl) (N.num_gates nl2)

let test_transform_scale_coupling () =
  let nl, _, _, n1, n2, _, _, c = small () in
  ignore n1;
  ignore n2;
  let nl2 = T.scale_coupling ~factor:0.5 nl [ c ] in
  check_f "halved" 0.002 (N.coupling nl2 0).N.coupling_cap;
  (* scaling to zero removes the cap *)
  let nl3 = T.scale_coupling ~factor:0. nl [ c ] in
  Alcotest.(check int) "zero removes" 0 (N.num_couplings nl3);
  Alcotest.(check bool) "bad factor" true
    (try
       ignore (T.scale_coupling ~factor:2. nl [ c ]);
       false
     with Invalid_argument _ -> true)

let test_transform_resize_driver () =
  let nl, _, _, _, _, g1, _, _ = small () in
  let x4 = Lib.find_exn "INV_X4" in
  let nl2 = T.resize_driver nl g1 x4 in
  Alcotest.(check string) "cell swapped" "INV_X4"
    (N.gate nl2 g1).N.cell.Tka_cell.Cell.name;
  (* other gates untouched *)
  Alcotest.(check string) "other kept" "NAND2_X1"
    (N.gate nl2 (g1 + 1)).N.cell.Tka_cell.Cell.name

let test_transform_wire_of () =
  let nl, a, _, _, _, _, _, _ = small () in
  let nl2 = T.map ~wire_of:(fun n -> (n.N.wire_cap *. 2., n.N.wire_res)) nl in
  check_f "cap doubled" ((N.net nl a).N.wire_cap *. 2.) (N.net nl2 a).N.wire_cap

(* ------------------------------------------------------------------ *)
(* Verilog-lite                                                       *)
(* ------------------------------------------------------------------ *)

module V = Tka_circuit.Verilog_lite

let verilog_src =
  {|
// a mapped netlist
module demo (a, b, y);
  input a, b;
  output y;
  wire n1;

  NAND2_X1 g1 (.A(a), .B(b), .Y(n1));
  INV_X1   g2 (.A(n1), .Y(y));
endmodule
|}

let test_verilog_parse () =
  let nl = V.parse ~lookup:Lib.find verilog_src in
  Alcotest.(check string) "module name" "demo" (N.name nl);
  Alcotest.(check int) "gates" 2 (N.num_gates nl);
  Alcotest.(check int) "inputs" 2 (List.length (N.inputs nl));
  Alcotest.(check (list int)) "outputs"
    [ (N.find_net_exn nl "y").N.net_id ]
    (N.outputs nl);
  (* connectivity: n1 drives g2's A pin *)
  let n1 = N.find_net_exn nl "n1" in
  Alcotest.(check int) "n1 fanout" 1 (List.length n1.N.sinks)

let test_verilog_roundtrip () =
  let nl = V.parse ~lookup:Lib.find verilog_src in
  let nl2 = V.parse ~lookup:Lib.find (V.print nl) in
  Alcotest.(check int) "gates" (N.num_gates nl) (N.num_gates nl2);
  Alcotest.(check int) "nets" (N.num_nets nl) (N.num_nets nl2);
  Alcotest.(check string) "stable fixpoint" (V.print nl) (V.print nl2)

let test_verilog_print_of_builder_netlist () =
  let nl, _, _, _, _, _, _, _ = small () in
  let nl2 = V.parse ~lookup:Lib.find (V.print nl) in
  Alcotest.(check int) "gates" (N.num_gates nl) (N.num_gates nl2);
  (* couplings are not representable in Verilog *)
  Alcotest.(check int) "no couplings" 0 (N.num_couplings nl2)

let test_verilog_spef_flow () =
  (* the standard flow: structural Verilog + SPEF parasitics *)
  let nl, _, _, _, _, _, _, _ = small () in
  let spef = Spef.print nl in
  let bare = V.parse ~lookup:Lib.find (V.print nl) in
  let annotated = Spef.apply (Spef.parse spef) bare in
  Alcotest.(check int) "couplings recovered" (N.num_couplings nl)
    (N.num_couplings annotated);
  let n1 = N.find_net_exn nl "n1" in
  let n1' = N.find_net_exn annotated "n1" in
  check_f "wire cap recovered" n1.N.wire_cap n1'.N.wire_cap

let hierarchical_src =
  {|
module leaf (a, b, y);
  input a, b;
  output y;
  wire t;
  NAND2_X1 u1 (.A(a), .B(b), .Y(t));
  INV_X1   u2 (.A(t), .Y(y));
endmodule

module top (x1, x2, x3, out);
  input x1, x2, x3;
  output out;
  wire m;
  leaf i0 (.a(x1), .b(x2), .y(m));
  leaf i1 (.a(m), .b(x3), .y(out));
endmodule
|}

let test_verilog_hierarchy_flattens () =
  let nl = V.parse ~lookup:Lib.find hierarchical_src in
  Alcotest.(check string) "top chosen" "top" (N.name nl);
  (* two leaf instances x two gates each *)
  Alcotest.(check int) "gates" 4 (N.num_gates nl);
  Alcotest.(check bool) "hierarchical gate names" true
    (N.find_gate nl "i0/u1" <> None && N.find_gate nl "i1/u2" <> None);
  (* the internal wire of each instance is prefixed *)
  Alcotest.(check bool) "prefixed nets" true (N.find_net nl "i0/t" <> None);
  (* port connections are shared, not duplicated: m is one net *)
  let m = N.find_net_exn nl "m" in
  Alcotest.(check int) "m has one driver and one sink" 1 (List.length m.N.sinks);
  (* the flattened design is a valid four-level DAG *)
  let topo = Topo.create nl in
  Alcotest.(check int) "four logic levels" 4 (Topo.max_level topo)

let test_verilog_hierarchy_deep () =
  let src =
    {|
module inner (a, y);
  input a;
  output y;
  INV_X1 g (.A(a), .Y(y));
endmodule
module mid (a, y);
  input a;
  output y;
  wire w;
  inner p (.a(a), .y(w));
  inner q (.a(w), .y(y));
endmodule
module top2 (a, y);
  input a;
  output y;
  mid m0 (.a(a), .y(y));
endmodule
|}
  in
  let nl = V.parse ~lookup:Lib.find src in
  Alcotest.(check int) "two inverters" 2 (N.num_gates nl);
  Alcotest.(check bool) "nested prefix" true (N.find_net nl "m0/w" <> None);
  Alcotest.(check bool) "nested gate" true (N.find_gate nl "m0/p/g" <> None)

let test_verilog_hierarchy_errors () =
  let parses src =
    try
      ignore (V.parse ~lookup:Lib.find src);
      true
    with V.Parse_error _ -> false
  in
  (* recursion *)
  Alcotest.(check bool) "recursion rejected" false
    (parses
       "module a (x, y); input x; output y; a g (.x(x), .y(y)); endmodule");
  (* bad port name on a module instance, reachable from the top *)
  Alcotest.(check bool) "bad port rejected" false
    (parses
       {|
module leaf2 (a, y);
  input a;
  output y;
  INV_X1 g (.A(a), .Y(y));
endmodule
module badtop (z, w);
  input z;
  output w;
  leaf2 l (.nope(z), .y(w));
endmodule
|});
  (* duplicate module *)
  Alcotest.(check bool) "duplicate module rejected" false
    (parses
       "module d (x); input x; endmodule\nmodule d (x); input x; endmodule")

let expect_verilog_error src =
  try
    ignore (V.parse ~lookup:Lib.find src);
    Alcotest.fail "expected Parse_error"
  with V.Parse_error { line; _ } ->
    Alcotest.(check bool) "line recorded" true (line >= 1)

let test_verilog_errors () =
  expect_verilog_error "wire w;";
  expect_verilog_error "module m (a); input a;";
  expect_verilog_error "module m (a); input a; assign b = a; endmodule";
  expect_verilog_error "module m (a); input a[3:0]; endmodule";
  expect_verilog_error
    "module m (a, y); input a; output y; NOPE_X9 g (.A(a), .Y(y)); endmodule";
  expect_verilog_error
    "module m (a, y); input a; output y; INV_X1 g (.A(zz), .Y(y)); endmodule";
  expect_verilog_error
    "module m (a, y); input a; output y; INV_X1 g (.A(a)); endmodule";
  expect_verilog_error
    "module m (a); input a; input a; endmodule"

(* ------------------------------------------------------------------ *)
(* Table-driven error paths: every parser reports the offending line  *)
(* ------------------------------------------------------------------ *)

module Sdf = Tka_circuit.Sdf_lite

(* Each table row is (case, source, expected line, message substring). *)
let check_error_table what err table =
  List.iter
    (fun (case, src, want_line, want_sub) ->
      match err src with
      | None ->
        Alcotest.fail (Printf.sprintf "%s/%s: expected Parse_error" what case)
      | Some (line, message) ->
        Alcotest.(check int)
          (Printf.sprintf "%s/%s: line" what case)
          want_line line;
        if not (contains_sub message want_sub) then
          Alcotest.fail
            (Printf.sprintf "%s/%s: message %S does not mention %S" what case
               message want_sub))
    table

let nf_err src =
  match Nf.parse ~lookup:Lib.find src with
  | _ -> None
  | exception Nf.Parse_error { line; message } -> Some (line, message)

let spef_err src =
  match Spef.parse src with
  | _ -> None
  | exception Spef.Parse_error { line; message } -> Some (line, message)

let sdf_err src =
  match Sdf.parse src with
  | _ -> None
  | exception Sdf.Parse_error { line; message } -> Some (line, message)

let v_err src =
  match V.parse ~lookup:Lib.find src with
  | _ -> None
  | exception V.Parse_error { line; message } -> Some (line, message)

let test_error_table_netlist () =
  check_error_table "nf" nf_err
    [
      ("duplicate input", "circuit t\ninput a\ninput a\n", 3, "duplicate net");
      ( "unknown cell",
        "circuit t\ninput a\nnet n1\ngate g1 NOPE A=a Y=n1\noutput n1\n",
        4,
        "unknown cell" );
      ("malformed number", "circuit t\ninput a cap=abc\n", 2, "malformed number");
      ("nan rejected", "circuit t\ninput a cap=nan\n", 2, "non-finite");
      ("inf rejected", "circuit t\ninput a cap=inf\n", 2, "non-finite");
      ("overflow rejected", "circuit t\ninput a cap=1e999\n", 2, "non-finite");
      ( "missing output binding",
        "circuit t\ninput a\nnet n1\ngate g1 INV_X1 A=a\n",
        4,
        "missing output binding" );
      ( "truncated file: undriven net is a whole-file (line 0) error",
        "circuit t\ninput a\nnet n1\noutput n1\n",
        0,
        "no driver" );
    ]

let test_error_table_spef () =
  check_error_table "spef" spef_err
    [
      ("*CAP outside *D_NET", "*CAP\n", 1, "*CAP outside");
      ("*END without *D_NET", "*END\n", 1, "*END without");
      ( "duplicate *D_NET before *END",
        "*D_NET a 1\n*D_NET b 1\n",
        2,
        "without closing" );
      ( "foreign ground net",
        "*D_NET a 1\n*CAP\n1 b 0.1\n*END\n",
        3,
        "foreign net" );
      ("malformed number", "*D_NET a x\n", 1, "malformed number");
      ("non-finite total", "*D_NET a inf\n", 1, "non-finite");
      ( "non-finite ground cap",
        "*D_NET a 1\n*CAP\n1 a 1e999\n*END\n",
        3,
        "non-finite" );
      ( "truncated file: unterminated *D_NET reports its opening line",
        "*SPEF lite\n*D_NET a 0.1\n*CAP\n1 a 0.05\n",
        2,
        "unterminated *D_NET" );
    ]

let test_error_table_sdf () =
  check_error_table "sdf" sdf_err
    [
      ("empty input", "", 1, "expected a single");
      ("unexpected rparen", ")", 1, "unexpected ')'");
      ( "truncated file names the unclosed paren",
        "(DELAYFILE\n  (CELL (INSTANCE g1)\n",
        2,
        "missing ')' for '(' on line 2" );
      ("unterminated string", "(DELAYFILE (DESIGN \"x", 1, "unterminated string");
      ( "bad delay on its own line",
        "(DELAYFILE\n(CELL (CELLTYPE \"c\") (INSTANCE g1)\n(DELAY (ABSOLUTE\n\
         (IOPATH A Y (oops))))))\n",
        4,
        "bad delay" );
      ( "non-finite delay",
        "(DELAYFILE\n(CELL (CELLTYPE \"c\") (INSTANCE g1)\n(DELAY (ABSOLUTE\n\
         (IOPATH A Y (1e999))))))\n",
        4,
        "non-finite delay" );
      ( "malformed IOPATH",
        "(DELAYFILE\n(CELL (INSTANCE g1)\n(DELAY (ABSOLUTE\n\
         (IOPATH A Y)))))\n",
        4,
        "malformed IOPATH" );
      ( "expected ABSOLUTE",
        "(DELAYFILE\n(CELL (INSTANCE g1)\n(DELAY (RELATIVE))))\n",
        3,
        "expected ABSOLUTE" );
      ( "CELL without INSTANCE",
        "(DELAYFILE\n(CELL (CELLTYPE \"c\")))\n",
        2,
        "CELL without INSTANCE" );
      ( "newline inside quoted string still counted",
        "(DELAYFILE\n(DESIGN \"a\nb\")\nBAD)\n",
        4,
        "unexpected item" );
    ]

let test_error_table_verilog () =
  check_error_table "verilog" v_err
    [
      ( "vector",
        "module m (a);\ninput a[3:0];\nendmodule\n",
        2,
        "vectors are not supported" );
      ( "behavioural",
        "module m (a);\ninput a;\nassign b = a;\nendmodule\n",
        3,
        "behavioural" );
      ( "module defined twice",
        "module m (a); input a; endmodule\nmodule m (a); input a; endmodule\n",
        2,
        "defined twice" );
      ( "duplicate declaration reported at the module line",
        "module m (a);\ninput a;\ninput a;\nendmodule\n",
        1,
        "declared twice" );
      ("truncated file", "module m (a);\ninput a;", 2, "missing endmodule");
      ( "unknown cell",
        "module m (a, y);\ninput a;\noutput y;\nNOPE_X9 g (.A(a), .Y(y));\n\
         endmodule\n",
        1,
        "unknown cell" );
    ]

(* Valid documents with CRLF line endings and blank lines must parse,
   and numbers followed by a CR must not be rejected as malformed. *)
let test_crlf_and_blank_lines () =
  let nl =
    Nf.parse ~lookup:Lib.find
      "circuit t\r\n\r\ninput a\r\nnet n1 cap=0.01\r\ngate g1 INV_X1 A=a \
       Y=n1\r\noutput n1\r\n"
  in
  Alcotest.(check int) "nf gates" 1 (N.num_gates nl);
  check_f "nf cap survives CR" 0.01 (N.find_net_exn nl "n1").N.wire_cap;
  let ann = Spef.parse "*D_NET n1 0.1\r\n*CAP\r\n\r\n1 n1 0.5\r\n*END\r\n" in
  (match ann.Spef.ground with
  | [ (net, cap, _res) ] ->
    Alcotest.(check string) "spef net" "n1" net;
    check_f "spef cap survives CR" 0.5 cap
  | _ -> Alcotest.fail "expected exactly one ground entry");
  let modules = "module m (a, y);\r\ninput a;\r\noutput y;\r\nINV_X1 g (.A(a), .Y(y));\r\nendmodule\r\n" in
  let nl2 = V.parse ~lookup:Lib.find modules in
  Alcotest.(check int) "verilog gates" 1 (N.num_gates nl2)

let test_sdf_roundtrip_and_link_error () =
  let nl, _, _, _, _, _, _, _ = small () in
  let src = Sdf.print ~delay_of:(fun _ -> 0.05) nl in
  let ann = Sdf.parse src in
  (* g1 has one input arc, g2 two *)
  Alcotest.(check int) "arcs" 3 (List.length ann.Sdf.sdf_arcs);
  Alcotest.(check (list (triple string (float 1e-9) (float 1e-9))))
    "no mismatches"
    []
    (Sdf.check_against ann ~delay_of:(fun _ -> 0.05) nl);
  let bad = { ann with Sdf.sdf_arcs = [ ("gX", "A", "Y", 0.1) ] } in
  match Sdf.check_against bad ~delay_of:(fun _ -> 0.1) nl with
  | _ -> Alcotest.fail "expected Link_error"
  | exception N.Link_error { source; message } ->
    Alcotest.(check string) "source" "sdf" source;
    Alcotest.(check bool) "names the instance" true (contains_sub message "gX")

(* ------------------------------------------------------------------ *)
(* Dot and stats                                                      *)
(* ------------------------------------------------------------------ *)

let test_dot_render () =
  let nl, _, _, _, _, _, _, _ = small () in
  let s = Dot.render nl in
  Alcotest.(check bool) "digraph" true (contains_sub s "digraph");
  Alcotest.(check bool) "gate node" true (contains_sub s "g_g1");
  Alcotest.(check bool) "coupling edge" true (contains_sub s "style=dashed");
  let s2 = Dot.render ~couplings:false nl in
  Alcotest.(check bool) "no coupling edge" false (contains_sub s2 "style=dashed")

let test_stats () =
  let nl, _, _, _, _, _, _, _ = small () in
  let st = Cs.compute nl in
  Alcotest.(check int) "gates" 2 st.Cs.gates;
  Alcotest.(check int) "all nets" 4 st.Cs.all_nets;
  Alcotest.(check int) "internal nets" 2 st.Cs.nets;
  Alcotest.(check int) "couplings" 1 st.Cs.coupling_caps;
  Alcotest.(check int) "depth" 2 st.Cs.max_logic_depth;
  Alcotest.(check int) "header/row same width" (List.length Cs.header)
    (List.length (Cs.row st))

(* ------------------------------------------------------------------ *)
(* Parser robustness: random input never escapes Parse_error          *)
(* ------------------------------------------------------------------ *)

let parser_robustness =
  let open QCheck in
  let arb_garbage =
    make ~print:(Printf.sprintf "%S")
      Gen.(
        let* n = int_range 0 200 in
        string_size ~gen:(char_range ' ' '~') (return n))
  in
  let never_panics name parse =
    Test.make ~name ~count:300 arb_garbage (fun src ->
        try
          ignore (parse src);
          true
        with
        | Nf.Parse_error _ | Spef.Parse_error _
        | Tka_circuit.Verilog_lite.Parse_error _
        | Tka_cell.Liberty_lite.Parse_error _ ->
          true)
  in
  (* mutation fuzzing digs deeper than pure garbage: start from a valid
     document and corrupt a few characters *)
  let mutate_of base =
    make
      ~print:(Printf.sprintf "%S")
      Gen.(
        let* edits = int_range 1 6 in
        let* seeds = list_repeat edits (pair (int_bound (String.length base - 1)) (char_range ' ' '~')) in
        let b = Bytes.of_string base in
        List.iter (fun (i, c) -> Bytes.set b i c) seeds;
        return (Bytes.to_string b))
  in
  let never_panics_mutated name base parse =
    Test.make ~name ~count:300 (mutate_of base) (fun src ->
        try
          ignore (parse src);
          true
        with
        | Nf.Parse_error _ | Spef.Parse_error _
        | Tka_circuit.Verilog_lite.Parse_error _
        | Tka_cell.Liberty_lite.Parse_error _ ->
          true)
  in
  let nl0, _, _, _, _, _, _, _ = small () in
  [
    never_panics "netlist format never panics" (Nf.parse ~lookup:Lib.find);
    never_panics "spef never panics" Spef.parse;
    never_panics "verilog never panics"
      (Tka_circuit.Verilog_lite.parse ~lookup:Lib.find);
    never_panics "liberty never panics" Tka_cell.Liberty_lite.parse;
    (let open QCheck in
     Test.make ~name:"sdf never panics" ~count:300
       (make ~print:(Printf.sprintf "%S")
          Gen.(
            let* n = int_range 0 200 in
            string_size ~gen:(char_range ' ' '~') (return n)))
       (fun src ->
         try
           ignore (Tka_circuit.Sdf_lite.parse src);
           true
         with Tka_circuit.Sdf_lite.Parse_error _ -> true));
    never_panics_mutated "mutated netlist never panics" (Nf.print nl0)
      (Nf.parse ~lookup:Lib.find);
    never_panics_mutated "mutated spef never panics" (Spef.print nl0) Spef.parse;
    never_panics_mutated "mutated verilog never panics"
      (Tka_circuit.Verilog_lite.print nl0)
      (Tka_circuit.Verilog_lite.parse ~lookup:Lib.find);
    never_panics_mutated "mutated liberty never panics"
      (Tka_cell.Default_lib.to_liberty ())
      Tka_cell.Liberty_lite.parse;
  ]

let () =
  Alcotest.run "tka_circuit"
    [
      ( "netlist",
        [
          Alcotest.test_case "build small" `Quick test_build_small;
          Alcotest.test_case "lookup" `Quick test_netlist_lookup;
          Alcotest.test_case "caps" `Quick test_netlist_caps;
          Alcotest.test_case "coupling partner" `Quick test_coupling_partner;
          Alcotest.test_case "fan queries" `Quick test_fan_queries;
        ] );
      ( "builder",
        [
          Alcotest.test_case "duplicate net" `Quick test_builder_duplicate_net;
          Alcotest.test_case "duplicate gate" `Quick test_builder_duplicate_gate;
          Alcotest.test_case "multiple drivers" `Quick test_builder_multiple_drivers;
          Alcotest.test_case "drive input" `Quick test_builder_drive_input;
          Alcotest.test_case "wrong pins" `Quick test_builder_wrong_pins;
          Alcotest.test_case "undriven net" `Quick test_builder_undriven_net;
          Alcotest.test_case "cycle" `Quick test_builder_cycle;
          Alcotest.test_case "self coupling" `Quick test_builder_self_coupling;
          Alcotest.test_case "negative coupling" `Quick test_builder_negative_coupling;
          Alcotest.test_case "implicit outputs" `Quick test_builder_implicit_outputs;
          Alcotest.test_case "set wire" `Quick test_builder_set_wire;
        ] );
      ( "topo",
        [
          Alcotest.test_case "order respects edges" `Quick test_topo_order_respects_edges;
          Alcotest.test_case "levels" `Quick test_topo_levels_chain;
          Alcotest.test_case "fanin cone" `Quick test_topo_fanin_cone;
          Alcotest.test_case "cone couplings" `Quick test_topo_fanin_cone_couplings;
          Alcotest.test_case "reachable outputs" `Quick test_topo_reachable_outputs;
          Alcotest.test_case "cone shards" `Quick test_topo_cone_shards;
        ] );
      ( "netlist_format",
        [
          Alcotest.test_case "roundtrip" `Quick test_format_roundtrip;
          Alcotest.test_case "parse minimal" `Quick test_format_parse_minimal;
          Alcotest.test_case "errors" `Quick test_format_errors;
          Alcotest.test_case "comments" `Quick test_format_comments_and_blank;
        ] );
      ( "spef",
        [
          Alcotest.test_case "roundtrip" `Quick test_spef_roundtrip;
          Alcotest.test_case "parse fields" `Quick test_spef_parse_fields;
          Alcotest.test_case "errors" `Quick test_spef_errors;
          Alcotest.test_case "unknown net" `Quick test_spef_apply_unknown_net;
        ] );
      ( "transform",
        [
          Alcotest.test_case "identity" `Quick test_transform_identity;
          Alcotest.test_case "remove couplings" `Quick test_transform_remove_couplings;
          Alcotest.test_case "scale coupling" `Quick test_transform_scale_coupling;
          Alcotest.test_case "resize driver" `Quick test_transform_resize_driver;
          Alcotest.test_case "wire_of" `Quick test_transform_wire_of;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "parse" `Quick test_verilog_parse;
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "print builder netlist" `Quick
            test_verilog_print_of_builder_netlist;
          Alcotest.test_case "verilog+spef flow" `Quick test_verilog_spef_flow;
          Alcotest.test_case "hierarchy flattens" `Quick test_verilog_hierarchy_flattens;
          Alcotest.test_case "hierarchy deep" `Quick test_verilog_hierarchy_deep;
          Alcotest.test_case "hierarchy errors" `Quick test_verilog_hierarchy_errors;
          Alcotest.test_case "errors" `Quick test_verilog_errors;
        ] );
      ( "parser error tables",
        [
          Alcotest.test_case "netlist format" `Quick test_error_table_netlist;
          Alcotest.test_case "spef" `Quick test_error_table_spef;
          Alcotest.test_case "sdf" `Quick test_error_table_sdf;
          Alcotest.test_case "verilog" `Quick test_error_table_verilog;
          Alcotest.test_case "crlf and blank lines" `Quick
            test_crlf_and_blank_lines;
          Alcotest.test_case "sdf roundtrip and link error" `Quick
            test_sdf_roundtrip_and_link_error;
        ] );
      ("parser robustness", List.map QCheck_alcotest.to_alcotest parser_robustness);
      ( "dot+stats",
        [
          Alcotest.test_case "dot" `Quick test_dot_render;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
