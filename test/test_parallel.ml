(* Tests for the domain pool and the determinism contract of the
   parallel engine / brute-force paths: the pool primitives must be
   position-stable and deadlock-free, and every analysis result must be
   bit-identical at any jobs count (docs/parallelism.md). *)

module Pool = Tka_parallel.Pool
module Engine = Tka_topk.Engine
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module BF = Tka_topk.Brute_force
module CS = Tka_topk.Coupling_set
module Ilist = Tka_topk.Ilist
module Topo = Tka_circuit.Topo
module B = Tka_layout.Benchmarks

let with_pool jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                    *)
(* ------------------------------------------------------------------ *)

let test_parallel_for () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let n = 1000 in
          let hit = Array.make n 0 in
          Pool.parallel_for p ~lo:0 ~hi:n (fun i -> hit.(i) <- hit.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "each index once (jobs=%d)" jobs)
            true
            (Array.for_all (fun c -> c = 1) hit)))
    [ 1; 2; 4 ]

let test_map_positions () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let input = Array.init 257 (fun i -> i) in
          let out = Pool.map ~chunk:3 p (fun i -> i * i) input in
          Alcotest.(check bool)
            (Printf.sprintf "map by position (jobs=%d)" jobs)
            true
            (Array.for_all (fun i -> out.(i) = i * i) input)))
    [ 1; 3 ]

let test_map_reduce_ordered () =
  (* string concatenation is non-commutative: only an input-order
     reduction gives the sequential answer *)
  let input = Array.init 40 string_of_int in
  let expected = String.concat "," (Array.to_list input) in
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let got =
            Pool.map_reduce ~chunk:1 p
              ~map:(fun s -> s)
              ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
              ~init:"" input
          in
          Alcotest.(check string)
            (Printf.sprintf "ordered reduce (jobs=%d)" jobs)
            expected got))
    [ 1; 4 ]

exception Boom of int

let test_exception_propagates () =
  with_pool 3 (fun p ->
      let raised =
        try
          Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:64 (fun i ->
              if i = 17 then raise (Boom i));
          false
        with Boom 17 -> true
      in
      Alcotest.(check bool) "body exception re-raised in caller" true raised;
      (* the pool must still be usable afterwards *)
      let out = Pool.map p (fun i -> i + 1) (Array.init 16 (fun i -> i)) in
      Alcotest.(check int) "pool alive after exception" 16 out.(15))

let test_nested_submit () =
  (* more outer tasks than domains, each submitting an inner batch: the
     submitter helps drain the queue, so this must not deadlock *)
  with_pool 2 (fun p ->
      let outer = Array.init 8 (fun i -> i) in
      let sums =
        Pool.map ~chunk:1 p
          (fun i ->
            Pool.map_reduce ~chunk:1 p
              ~map:(fun x -> x)
              ~reduce:( + ) ~init:0
              (Array.init 50 (fun j -> (100 * i) + j)))
          outer
      in
      Array.iteri
        (fun i s ->
          Alcotest.(check int)
            (Printf.sprintf "nested sum %d" i)
            ((50 * 100 * i) + 1225)
            s)
        sums)

let test_jobs1_identity () =
  (* jobs=1 takes the sequential path: strict input order, in the
     calling domain *)
  with_pool 1 (fun p ->
      Alcotest.(check int) "size clamped" 1 (Pool.size p);
      let order = ref [] in
      let self = Domain.self () in
      Pool.iter ~chunk:2 p
        (fun i ->
          Alcotest.(check bool) "runs in caller" true (Domain.self () = self);
          order := i :: !order)
        (Array.init 9 (fun i -> i));
      Alcotest.(check (list int))
        "sequential order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
        (List.rev !order))

let test_default_pool_sizing () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  Alcotest.(check int) "set_default_jobs" 3 (Pool.default_jobs ());
  Alcotest.(check int) "default pool size" 3 (Pool.size (Pool.get_default ()));
  Pool.set_default_jobs before

(* ------------------------------------------------------------------ *)
(* Engine determinism across jobs                                     *)
(* ------------------------------------------------------------------ *)

let choice_repr = function
  | None -> "-"
  | Some c ->
    Printf.sprintf "%s obj=%.9f sink=%d"
      (String.concat "," (List.map string_of_int (CS.to_list c.Engine.ch_set)))
      c.Engine.ch_objective c.Engine.ch_sink

let result_repr (r : Engine.result) =
  let per_k =
    Array.to_list r.Engine.res_per_k |> List.map choice_repr
    |> String.concat " | "
  in
  let st = r.Engine.res_stats in
  Printf.sprintf "%s ;; stats c=%d d=%d u=%d p=%d k=%d" per_k
    st.Ilist.candidates st.Ilist.dominated st.Ilist.duplicates st.Ilist.capped
    st.Ilist.checks

let at_jobs jobs f =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) f

let engine_repr ~mode ~k topo =
  result_repr (Engine.compute ~config:(Engine.default_config ~k) ~mode topo)

let test_engine_jobs_invariant name mode () =
  let topo =
    Topo.create
      (match B.by_name name with Some nl -> nl | None -> assert false)
  in
  let k = 8 in
  let seq = at_jobs 1 (fun () -> engine_repr ~mode ~k topo) in
  List.iter
    (fun jobs ->
      let par = at_jobs jobs (fun () -> engine_repr ~mode ~k topo) in
      Alcotest.(check string)
        (Printf.sprintf "%s %s jobs=%d == jobs=1" name
           (match mode with
           | Engine.Addition -> "addition"
           | Engine.Elimination -> "elimination")
           jobs)
        seq par)
    [ 2; 4 ]

let test_table2x_sharded_invariant () =
  (* a multi-cone table2x circuit takes the cone-sharded sweep path at
     jobs > 1 (the Table 2 suite is single-shard, so only this covers
     Shard.run end-to-end); results must stay bitwise identical *)
  let spec = Tka_layout.Table2x.spec ~nets:600 ~cones:6 () in
  let topo = Topo.create (Tka_layout.Table2x.generate spec) in
  Alcotest.(check bool) "multiple shards" true
    (Array.length (Topo.cone_shards topo) > 1);
  let k = 4 in
  List.iter
    (fun mode ->
      let seq = at_jobs 1 (fun () -> engine_repr ~mode ~k topo) in
      List.iter
        (fun jobs ->
          let par = at_jobs jobs (fun () -> engine_repr ~mode ~k topo) in
          Alcotest.(check string)
            (Printf.sprintf "t2x sharded jobs=%d == jobs=1" jobs)
            seq par)
        [ 2; 4 ])
    [ Engine.Addition; Engine.Elimination ]

(* ------------------------------------------------------------------ *)
(* Brute force determinism across jobs                                *)
(* ------------------------------------------------------------------ *)

let test_subset_unranking () =
  (* subset_of_rank is exercised through run: a chunked parallel scan
     must visit exactly the same subsets as the sequential one, which
     the outcome equality below certifies on every rank boundary *)
  let nl = B.tiny () in
  let topo = Topo.create nl in
  let outcome_repr (r : BF.outcome) =
    Printf.sprintf "%s %.9f %d %d %b"
      (match r.BF.bf_set with
      | None -> "-"
      | Some s -> String.concat "," (List.map string_of_int (CS.to_list s)))
      r.BF.bf_delay r.BF.bf_evaluated r.BF.bf_total r.BF.bf_completed
  in
  List.iter
    (fun k ->
      let seq = at_jobs 1 (fun () -> outcome_repr (BF.addition ~k topo)) in
      List.iter
        (fun jobs ->
          let par =
            at_jobs jobs (fun () -> outcome_repr (BF.addition ~k topo))
          in
          Alcotest.(check string)
            (Printf.sprintf "brute force k=%d jobs=%d == jobs=1" k jobs)
            seq par)
        [ 2; 4 ])
    [ 1; 2; 3 ]

(* qcheck: random circuits, elimination + addition, jobs 1 vs 3 *)
let test_random_jobs_invariant =
  QCheck.Test.make ~name:"random circuit: engine jobs-invariant" ~count:6
    QCheck.(pair (int_range 6 14) (int_range 0 10_000))
    (fun (gates, seed) ->
      let spec =
        {
          B.sp_name = "rnd";
          sp_gates = gates;
          sp_inputs = 3;
          sp_depth = 3;
          sp_couplings = 2 * gates;
          sp_seed = seed;
        }
      in
      let topo = Topo.create (B.generate spec) in
      let k = 4 in
      List.for_all
        (fun mode ->
          let seq = at_jobs 1 (fun () -> engine_repr ~mode ~k topo) in
          let par = at_jobs 3 (fun () -> engine_repr ~mode ~k topo) in
          String.equal seq par)
        [ Engine.Addition; Engine.Elimination ])

let () =
  Alcotest.run "tka_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for;
          Alcotest.test_case "map is position-stable" `Quick test_map_positions;
          Alcotest.test_case "map_reduce folds in order" `Quick
            test_map_reduce_ordered;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested submit" `Quick test_nested_submit;
          Alcotest.test_case "jobs=1 identity" `Quick test_jobs1_identity;
          Alcotest.test_case "default pool sizing" `Quick
            test_default_pool_sizing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "i1 addition jobs {1,2,4}" `Quick
            (test_engine_jobs_invariant "i1" Engine.Addition);
          Alcotest.test_case "i1 elimination jobs {1,2,4}" `Quick
            (test_engine_jobs_invariant "i1" Engine.Elimination);
          Alcotest.test_case "i2 addition jobs {1,2,4}" `Slow
            (test_engine_jobs_invariant "i2" Engine.Addition);
          Alcotest.test_case "table2x sharded jobs {1,2,4}" `Quick
            test_table2x_sharded_invariant;
          Alcotest.test_case "i2 elimination jobs {1,2,4}" `Slow
            (test_engine_jobs_invariant "i2" Engine.Elimination);
          Alcotest.test_case "brute force jobs {1,2,4}" `Quick
            test_subset_unranking;
          QCheck_alcotest.to_alcotest test_random_jobs_invariant;
        ] );
    ]
