(* End-to-end integration tests: full generate -> STA -> noise -> top-k
   pipelines on the i1 benchmark, interchange-format round trips of
   generated circuits, and whole-pipeline determinism. *)

module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Nf = Tka_circuit.Netlist_format
module Spef = Tka_circuit.Spef_lite
module Analysis = Tka_sta.Analysis
module CP = Tka_sta.Critical_path
module Iterate = Tka_noise.Iterate
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set
module B = Tka_layout.Benchmarks
module Lib = Tka_cell.Default_lib

let i1 = lazy (Option.get (B.by_name "i1"))
let i1_topo = lazy (Topo.create (Lazy.force i1))

let test_full_sta () =
  let topo = Lazy.force i1_topo in
  let a = Analysis.run topo in
  let d = Analysis.circuit_delay a in
  (* the calibrated substrate puts i1 in the paper's range *)
  Alcotest.(check bool) "i1 noiseless in range" true (d > 0.3 && d < 0.7);
  let path = CP.worst a in
  Alcotest.(check bool) "path spans depth" true (List.length path >= 6)

let test_full_noise () =
  let topo = Lazy.force i1_topo in
  let r = Iterate.run topo in
  Alcotest.(check bool) "converged" true r.Iterate.converged;
  let frac = Iterate.total_delay_noise r /. Iterate.noiseless_delay r in
  Alcotest.(check bool) "noise fraction like the paper (5-40%)" true
    (frac > 0.02 && frac < 0.45)

let test_full_topk_addition_curve () =
  let topo = Lazy.force i1_topo in
  let add = Addition.compute ~k:10 topo in
  (* the evaluated curve rises from noiseless toward the all-aggressor
     delay, like Table 2 *)
  let d1 = Addition.evaluate add 1 in
  let d5 = Addition.evaluate add 5 in
  let d10 = Addition.evaluate add 10 in
  Alcotest.(check bool) "rises" true (d1 <= d5 +. 1e-9 && d5 <= d10 +. 1e-9);
  Alcotest.(check bool) "above noiseless" true (d1 > Addition.noiseless_delay add);
  Alcotest.(check bool) "top-10 captures a good chunk" true
    ((d10 -. Addition.noiseless_delay add)
     /. (Addition.all_aggressor_delay add -. Addition.noiseless_delay add)
    > 0.25)

let test_full_topk_elimination_curve () =
  let topo = Lazy.force i1_topo in
  let elim = Elimination.compute ~k:10 topo in
  let d1 = Elimination.evaluate elim 1 in
  let d10 = Elimination.evaluate elim 10 in
  Alcotest.(check bool) "falls" true (d10 <= d1 +. 1e-9);
  Alcotest.(check bool) "below all-aggressor" true
    (d1 < Elimination.all_aggressor_delay elim)

let test_netlist_roundtrip_i1 () =
  let nl = Lazy.force i1 in
  let nl2 = Nf.parse ~lookup:Lib.find (Nf.print nl) in
  Alcotest.(check int) "gates" (N.num_gates nl) (N.num_gates nl2);
  Alcotest.(check int) "couplings" (N.num_couplings nl) (N.num_couplings nl2);
  (* identical timing after round trip *)
  let d1 = Analysis.circuit_delay (Analysis.run (Lazy.force i1_topo)) in
  let d2 = Analysis.circuit_delay (Analysis.run (Topo.create nl2)) in
  Alcotest.(check (float 1e-9)) "same delay" d1 d2

let test_spef_roundtrip_i1 () =
  let nl = Lazy.force i1 in
  let ann = Spef.parse (Spef.print nl) in
  let nl2 = Spef.apply ann nl in
  Alcotest.(check int) "couplings" (N.num_couplings nl) (N.num_couplings nl2);
  let d1 = Iterate.circuit_delay (Iterate.run (Lazy.force i1_topo)) in
  let d2 = Iterate.circuit_delay (Iterate.run (Topo.create nl2)) in
  Alcotest.(check (float 1e-6)) "same noisy delay" d1 d2

let test_pipeline_deterministic () =
  let run () =
    let nl = Option.get (B.by_name "i1") in
    let topo = Topo.create nl in
    let add = Addition.compute ~k:3 topo in
    ( Addition.evaluate add 3,
      Option.map CS.to_list (Addition.set add 3) )
  in
  let d1, s1 = run () in
  let d2, s2 = run () in
  Alcotest.(check (float 0.)) "same delay" d1 d2;
  Alcotest.(check bool) "same set" true (s1 = s2)

let test_topk_set_members_exist () =
  let nl = Lazy.force i1 in
  let topo = Lazy.force i1_topo in
  let add = Addition.compute ~k:5 topo in
  match Addition.set add 5 with
  | None -> Alcotest.fail "expected set"
  | Some s ->
    CS.iter
      (fun id ->
        let d = Tka_noise.Coupled_noise.of_directed_id nl id in
        Alcotest.(check bool) "valid coupling" true
          (d.Tka_noise.Coupled_noise.dc_coupling < N.num_couplings nl))
      s

let test_c17_full_flow () =
  let nl = B.c17 () in
  let topo = Topo.create nl in
  let r = Iterate.run topo in
  Alcotest.(check bool) "converged" true r.Iterate.converged;
  Alcotest.(check bool) "some noise" true (Iterate.total_delay_noise r > 0.);
  let add = Addition.compute ~k:3 topo in
  let bf = Tka_topk.Brute_force.addition ~budget_s:60. ~k:1 topo in
  Alcotest.(check (float 1e-6)) "c17 top-1 matches brute force" bf.Tka_topk.Brute_force.bf_delay
    (Addition.evaluate add 1)

let test_glitch_and_constraints_on_i1 () =
  let topo = Lazy.force i1_topo in
  let a = Tka_sta.Analysis.run topo in
  (* a clock below the noisy delay must be violated once noise is in *)
  let noisy = Iterate.run topo in
  let period =
    0.5 *. (Tka_sta.Analysis.circuit_delay a +. Iterate.circuit_delay noisy)
  in
  let con =
    Tka_sta.Constraints.create ~clock_period:period
      noisy.Iterate.analysis
  in
  Alcotest.(check bool) "noise creates violations" true
    (Tka_sta.Constraints.worst_slack con < 0.);
  let clean = Tka_sta.Constraints.create ~clock_period:period a in
  Alcotest.(check bool) "noiseless meets the same clock" true
    (Tka_sta.Constraints.worst_slack clean >= 0.);
  (* glitch screen runs clean *)
  let v = Tka_noise.Glitch.check topo in
  Alcotest.(check bool) "glitch screen terminates" true (List.length v >= 0)

let test_iterate_monotone_in_active_set () =
  (* random nested subsets: more active couplings, never less delay *)
  let nl = B.tiny () in
  let topo = Topo.create nl in
  let rng = Tka_util.Rng.create 77 in
  for _ = 1 to 10 do
    let n = 2 * N.num_couplings nl in
    let small_set =
      List.init n (fun i -> i) |> List.filter (fun _ -> Tka_util.Rng.bool rng)
    in
    let extra = Tka_util.Rng.int rng n in
    let big_set = List.sort_uniq compare (extra :: small_set) in
    let delay ids =
      Iterate.circuit_delay
        (Iterate.run
           ~active:(fun d ->
             List.mem (Tka_noise.Coupled_noise.directed_id d) ids)
           topo)
    in
    Alcotest.(check bool) "monotone" true (delay small_set <= delay big_set +. 1e-9)
  done

let test_corner_noise_ordering () =
  (* the slow corner has weaker drivers: more delay, and (weaker holding)
     at least as much relative noise exposure *)
  let nl = B.c17 () in
  let at corner =
    let derated =
      Tka_circuit.Transform.map
        ~cell_of:(fun g -> Tka_cell.Corner.derate_cell corner g.N.cell)
        nl
    in
    Iterate.run (Topo.create derated)
  in
  let tt = at Tka_cell.Corner.typical in
  let ss = at Tka_cell.Corner.slow in
  let ff = at Tka_cell.Corner.fast in
  Alcotest.(check bool) "ss slowest" true
    (Iterate.circuit_delay ss > Iterate.circuit_delay tt);
  Alcotest.(check bool) "ff fastest" true
    (Iterate.circuit_delay ff < Iterate.circuit_delay tt);
  Alcotest.(check bool) "all converge" true
    (tt.Iterate.converged && ss.Iterate.converged && ff.Iterate.converged)

let () =
  Alcotest.run "tka_integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "sta" `Quick test_full_sta;
          Alcotest.test_case "noise" `Quick test_full_noise;
          Alcotest.test_case "top-k addition curve" `Quick test_full_topk_addition_curve;
          Alcotest.test_case "top-k elimination curve" `Quick
            test_full_topk_elimination_curve;
          Alcotest.test_case "netlist round trip" `Quick test_netlist_roundtrip_i1;
          Alcotest.test_case "spef round trip" `Quick test_spef_roundtrip_i1;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
          Alcotest.test_case "set members exist" `Quick test_topk_set_members_exist;
          Alcotest.test_case "c17 full flow" `Quick test_c17_full_flow;
          Alcotest.test_case "glitch + constraints" `Quick
            test_glitch_and_constraints_on_i1;
          Alcotest.test_case "iterate monotone in active set" `Quick
            test_iterate_monotone_in_active_set;
          Alcotest.test_case "corner ordering" `Quick test_corner_noise_ordering;
        ] );
    ]
