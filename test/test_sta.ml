(* Tests for timing windows, delay calculation, STA propagation and
   critical-path extraction. *)

module TW = Tka_sta.Timing_window
module DC = Tka_sta.Delay_calc
module Analysis = Tka_sta.Analysis
module CP = Tka_sta.Critical_path
module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module Lib = Tka_cell.Default_lib
module Interval = Tka_util.Interval

let check_f = Alcotest.(check (float 1e-9))
let check_f6 = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Timing_window                                                      *)
(* ------------------------------------------------------------------ *)

let test_window_make () =
  let w = TW.make ~eat:1. ~lat:2. ~slew_early:0.1 ~slew_late:0.2 in
  check_f "width" 1. (TW.width w);
  check_f "interval lo" 1. (Interval.lo (TW.interval w));
  check_f "interval hi" 2. (Interval.hi (TW.interval w))

let test_window_invalid () =
  Alcotest.(check bool) "eat > lat" true
    (try
       ignore (TW.make ~eat:2. ~lat:1. ~slew_early:0.1 ~slew_late:0.1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad slew" true
    (try
       ignore (TW.make ~eat:0. ~lat:1. ~slew_early:0. ~slew_late:0.1);
       false
     with Invalid_argument _ -> true)

let test_window_point () =
  let w = TW.point ~t50:3. ~slew:0.1 in
  check_f "width" 0. (TW.width w);
  check_f "eat = lat" w.TW.eat w.TW.lat

let test_window_merge () =
  let a = TW.make ~eat:1. ~lat:2. ~slew_early:0.10 ~slew_late:0.20 in
  let b = TW.make ~eat:0.5 ~lat:1.5 ~slew_early:0.30 ~slew_late:0.40 in
  let m = TW.merge a b in
  check_f "eat" 0.5 m.TW.eat;
  check_f "lat" 2. m.TW.lat;
  check_f "slew of earliest" 0.30 m.TW.slew_early;
  check_f "slew of latest" 0.20 m.TW.slew_late

let test_window_shift_extend () =
  let w = TW.make ~eat:1. ~lat:2. ~slew_early:0.1 ~slew_late:0.2 in
  let s = TW.shift 1. w in
  check_f "shift eat" 2. s.TW.eat;
  check_f "shift lat" 3. s.TW.lat;
  let e = TW.extend_lat 0.5 w in
  check_f "extend lat" 2.5 e.TW.lat;
  check_f "extend eat unchanged" 1. e.TW.eat

let test_window_onset_interval () =
  let w = TW.make ~eat:1. ~lat:2. ~slew_early:0.2 ~slew_late:0.4 in
  let o = TW.onset_interval w in
  check_f "onset lo" 0.9 (Interval.lo o);
  check_f "onset hi" 1.8 (Interval.hi o)

let test_window_latest_transition () =
  let w = TW.make ~eat:1. ~lat:2. ~slew_early:0.1 ~slew_late:0.3 in
  let t = TW.latest_transition w in
  check_f "t50" 2. t.Tka_waveform.Transition.t50;
  check_f "slew" 0.3 t.Tka_waveform.Transition.slew

(* ------------------------------------------------------------------ *)
(* Chains and trees                                                   *)
(* ------------------------------------------------------------------ *)

let chain n =
  let b = Builder.create ~name:"chain" () in
  let first = Builder.add_input b "in" in
  let prev = ref first in
  for i = 1 to n do
    let net = Builder.add_net b (Printf.sprintf "c%d" i) in
    ignore
      (Builder.add_gate b
         ~name:(Printf.sprintf "g%d" i)
         ~cell:Lib.inverter
         ~inputs:[ ("A", !prev) ]
         ~output:net);
    prev := net
  done;
  Builder.mark_output b !prev;
  Builder.finalize b

let test_delay_calc_net_load () =
  let nl = chain 2 in
  let n1 = (N.find_net_exn nl "c1").N.net_id in
  (* load of c1 = wire cap + INV_X1 pin cap *)
  check_f6 "load"
    ((N.net nl n1).N.wire_cap +. Tka_cell.Cell.input_capacitance Lib.inverter "A")
    (DC.net_load nl n1)

let test_stage_delay_includes_wire_rc () =
  let nl = chain 1 in
  let g = (Option.get (N.find_gate nl "g1")).N.gate_id in
  let out = (N.gate nl g).N.fanout in
  let load = DC.net_load nl out in
  let expect =
    Tka_cell.Delay_model.gate_delay ~cell:Lib.inverter ~load
    +. ((N.net nl out).N.wire_res *. 0.5 *. load)
  in
  check_f6 "stage delay" expect (DC.stage_delay nl g)

let test_holding_resistance_pi () =
  let nl = chain 1 in
  let pi = List.hd (N.inputs nl) in
  check_f6 "PI holding"
    (DC.input_driver_resistance +. (N.net nl pi).N.wire_res)
    (DC.holding_resistance nl pi)

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

let test_sta_chain_sums_delays () =
  let nl = chain 4 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let expect =
    List.fold_left
      (fun acc i ->
        acc +. DC.stage_delay nl (Option.get (N.find_gate nl (Printf.sprintf "g%d" i))).N.gate_id)
      0. [ 1; 2; 3; 4 ]
  in
  check_f6 "circuit delay" expect (Analysis.circuit_delay a)

let test_sta_pi_window () =
  let nl = chain 1 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let w = Analysis.window a (List.hd (N.inputs nl)) in
  check_f "PI at zero" 0. w.TW.lat;
  check_f "degenerate" 0. (TW.width w)

let test_sta_custom_input_arrival () =
  let nl = chain 1 in
  let topo = Topo.create nl in
  let input_arrival _ = TW.make ~eat:0.1 ~lat:0.4 ~slew_early:0.05 ~slew_late:0.06 in
  let a = Analysis.run ~input_arrival topo in
  let out = List.hd (N.outputs nl) in
  let w = Analysis.window a out in
  check_f6 "window width preserved" 0.3 (TW.width w)

let test_sta_extra_lat_propagates () =
  let nl = chain 3 in
  let topo = Topo.create nl in
  let base = Analysis.run topo in
  let bump = (N.find_net_exn nl "c1").N.net_id in
  let a = Analysis.run ~extra_lat:(fun nid -> if nid = bump then 0.1 else 0.) topo in
  check_f6 "downstream shifted" (Analysis.circuit_delay base +. 0.1)
    (Analysis.circuit_delay a);
  (* EAT unchanged *)
  let out = List.hd (N.outputs nl) in
  check_f6 "eat unchanged" (Analysis.window base out).TW.eat
    (Analysis.window a out).TW.eat

let test_sta_negative_extra_rejected () =
  let nl = chain 1 in
  let topo = Topo.create nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Analysis.run ~extra_lat:(fun _ -> -1.) topo);
       false
     with Invalid_argument _ -> true)

(* diverging paths: out via short (1 gate) and long (3 gates) branches *)
let diamond () =
  let b = Builder.create ~name:"diamond" () in
  let a = Builder.add_input b "a" in
  let n1 = Builder.add_net b "n1" in
  let n2 = Builder.add_net b "n2" in
  let n3 = Builder.add_net b "n3" in
  let out = Builder.add_net b "out" in
  ignore (Builder.add_gate b ~name:"s1" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n1);
  ignore (Builder.add_gate b ~name:"l1" ~cell:Lib.inverter ~inputs:[ ("A", a) ] ~output:n2);
  ignore (Builder.add_gate b ~name:"l2" ~cell:Lib.inverter ~inputs:[ ("A", n2) ] ~output:n3);
  ignore
    (Builder.add_gate b ~name:"j" ~cell:(Lib.find_exn "NAND2_X1")
       ~inputs:[ ("A", n1); ("B", n3) ]
       ~output:out);
  Builder.mark_output b out;
  Builder.finalize b

let test_sta_window_merge_at_join () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let out = List.hd (N.outputs nl) in
  let w = Analysis.window a out in
  Alcotest.(check bool) "window has width" true (TW.width w > 0.);
  (* LAT comes from the longer branch *)
  let d_join = DC.stage_delay nl (Option.get (N.find_gate nl "j")).N.gate_id in
  let n3 = (N.find_net_exn nl "n3").N.net_id in
  check_f6 "lat via n3" ((Analysis.window a n3).TW.lat +. d_join) w.TW.lat

let test_worst_output () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  Alcotest.(check int) "single PO" (List.hd (N.outputs nl)) (Analysis.worst_output a);
  Alcotest.(check int) "arrivals list" 1 (List.length (Analysis.output_arrivals a))

(* ------------------------------------------------------------------ *)
(* Critical path                                                      *)
(* ------------------------------------------------------------------ *)

let test_critical_path_chain () =
  let nl = chain 3 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let path = CP.worst a in
  Alcotest.(check int) "all nets on path" 4 (List.length path);
  (* input first, output last, arrivals non-decreasing *)
  let arrivals = List.map (fun s -> s.CP.step_arrival) path in
  let rec non_decreasing = function
    | a :: (b :: _ as tl) -> a <= b +. 1e-9 && non_decreasing tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone arrivals" true (non_decreasing arrivals);
  (match path with
  | first :: _ ->
    Alcotest.(check int) "starts at PI" (List.hd (N.inputs nl)) first.CP.step_net
  | [] -> Alcotest.fail "empty path")

let test_critical_path_diamond_takes_long_branch () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let path = CP.worst a in
  let names = List.map (fun s -> (N.net nl s.CP.step_net).N.net_name) path in
  Alcotest.(check bool) "goes through n2/n3" true
    (List.mem "n2" names && List.mem "n3" names)

let test_near_critical_enumerates_both () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  (* with a huge slack allowance both branches appear *)
  let paths = CP.near_critical ~slack:10. a in
  Alcotest.(check bool) "at least two" true (List.length paths >= 2);
  (* worst first *)
  (match paths with
  | first :: _ ->
    let worst_names = List.map (fun s -> (N.net nl s.CP.step_net).N.net_name) (CP.worst a) in
    let got = List.map (fun s -> (N.net nl s.CP.step_net).N.net_name) first in
    Alcotest.(check (list string)) "worst first" worst_names got
  | [] -> Alcotest.fail "no paths");
  (* zero slack keeps only the critical one *)
  let tight = CP.near_critical ~slack:0. a in
  Alcotest.(check int) "only critical" 1 (List.length tight)

let test_near_critical_limit () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let paths = CP.near_critical ~slack:10. ~limit:1 a in
  Alcotest.(check int) "limited" 1 (List.length paths)

(* ------------------------------------------------------------------ *)
(* Constraints                                                        *)
(* ------------------------------------------------------------------ *)

module Con = Tka_sta.Constraints

let test_constraints_default_period () =
  let nl = chain 3 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let c = Con.create a in
  check_f6 "5%% guard band" (1.05 *. Analysis.circuit_delay a) (Con.clock_period c);
  Alcotest.(check bool) "worst slack positive" true (Con.worst_slack c > 0.);
  Alcotest.(check (list int)) "no violations" [] (Con.violations c)

let test_constraints_required_propagates () =
  let nl = chain 3 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let c = Con.create ~clock_period:1.0 a in
  let out = List.hd (N.outputs nl) in
  check_f6 "required at PO" 1.0 (Con.required c out);
  (* required upstream = PO required minus downstream stage delays *)
  let g3 = (Option.get (N.find_gate nl "g3")).N.gate_id in
  let c2 = (N.find_net_exn nl "c2").N.net_id in
  check_f6 "required one stage up"
    (1.0 -. Tka_sta.Delay_calc.stage_delay nl g3)
    (Con.required c c2)

let test_constraints_violations () =
  let nl = chain 3 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let tight = 0.5 *. Analysis.circuit_delay a in
  let c = Con.create ~clock_period:tight a in
  Alcotest.(check bool) "worst slack negative" true (Con.worst_slack c < 0.);
  let v = Con.violations c in
  Alcotest.(check bool) "violations found" true (v <> []);
  (* worst first *)
  (match v with
  | first :: _ ->
    check_f6 "worst is head" (Con.worst_slack c) (Con.slack c first)
  | [] -> ());
  Alcotest.(check bool) "critical query" true
    (Con.critical_through c (List.hd v))

let test_constraints_pinned_output () =
  let nl = chain 2 in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let out = List.hd (N.outputs nl) in
  let c =
    Con.create ~clock_period:9.
      ~output_required:(fun po -> if po = out then Some 0.01 else None)
      a
  in
  Alcotest.(check bool) "pinned requirement violated" true (Con.slack c out < 0.)

(* ------------------------------------------------------------------ *)
(* SDF-lite (written against this library's stage delays)             *)
(* ------------------------------------------------------------------ *)

module Sdf = Tka_circuit.Sdf_lite

let test_sdf_roundtrip () =
  let nl = diamond () in
  let delay_of (g : N.gate) = DC.stage_delay nl g.N.gate_id in
  let text = Sdf.print ~delay_of nl in
  let ann = Sdf.parse text in
  Alcotest.(check (option string)) "design" (Some "diamond") ann.Sdf.sdf_design;
  (* one arc per gate input pin *)
  let expected_arcs =
    Array.fold_left (fun acc g -> acc + List.length g.N.fanin) 0 (N.gates nl)
  in
  Alcotest.(check int) "arc count" expected_arcs (List.length ann.Sdf.sdf_arcs);
  Alcotest.(check (list (triple string (float 1e-9) (float 1e-9))))
    "no mismatches" []
    (Sdf.check_against ann ~delay_of nl)

let test_sdf_check_detects_mismatch () =
  let nl = diamond () in
  let delay_of (g : N.gate) = DC.stage_delay nl g.N.gate_id in
  let text = Sdf.print ~delay_of nl in
  let ann = Sdf.parse text in
  let skewed (g : N.gate) = delay_of g +. 0.1 in
  let mismatches = Sdf.check_against ann ~delay_of:skewed nl in
  Alcotest.(check int) "all arcs mismatch" (List.length ann.Sdf.sdf_arcs)
    (List.length mismatches)

let test_sdf_noisy_export () =
  (* exporting noisy delays: arcs grow by the per-net noise *)
  let nl = diamond () in
  let bump = (N.find_net_exn nl "n3").N.net_id in
  let noisy (g : N.gate) =
    DC.stage_delay nl g.N.gate_id +. (if g.N.fanout = bump then 0.05 else 0.)
  in
  let ann = Sdf.parse (Sdf.print ~delay_of:noisy nl) in
  let l2 = List.filter (fun (i, _, _, _) -> i = "l2") ann.Sdf.sdf_arcs in
  (match l2 with
  | [ (_, _, _, d) ] ->
    let g = Option.get (N.find_gate nl "l2") in
    check_f6 "noise included" (DC.stage_delay nl g.N.gate_id +. 0.05) d
  | _ -> Alcotest.fail "expected one l2 arc")

let expect_sdf_error src =
  try
    ignore (Sdf.parse src);
    Alcotest.fail "expected Parse_error"
  with Sdf.Parse_error _ -> ()

let test_sdf_errors () =
  expect_sdf_error "";
  expect_sdf_error "(DELAYFILE";
  expect_sdf_error "(DELAYFILE (WHAT))";
  expect_sdf_error "(DELAYFILE (CELL (DELAY (ABSOLUTE))))";
  expect_sdf_error
    "(DELAYFILE (CELL (INSTANCE g) (DELAY (ABSOLUTE (IOPATH A Y (oops))))))"

(* ------------------------------------------------------------------ *)
(* Report_timing                                                      *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_timing_basic () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let r = Tka_sta.Report_timing.worst a in
  Alcotest.(check bool) "mentions a cell" true (contains_sub r "INV_X1");
  Alcotest.(check bool) "mentions gate/net points" true (contains_sub r "l2/n3");
  Alcotest.(check bool) "input marked" true (contains_sub r "(input)")

let test_report_timing_with_constraints () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let met = Con.create ~clock_period:9. a in
  let r = Tka_sta.Report_timing.worst ~constraints:met a in
  Alcotest.(check bool) "met" true (contains_sub r "MET");
  let tight = Con.create ~clock_period:0.01 a in
  let r2 = Tka_sta.Report_timing.worst ~constraints:tight a in
  Alcotest.(check bool) "violated" true (contains_sub r2 "VIOLATED")

let test_report_timing_noise_column () =
  let nl = diamond () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let bump = (N.find_net_exn nl "n3").N.net_id in
  let r =
    Tka_sta.Report_timing.worst
      ~extra_delay:(fun nid -> if nid = bump then 0.123 else 0.)
      a
  in
  Alcotest.(check bool) "noise column rendered" true (contains_sub r "0.1230")

(* ------------------------------------------------------------------ *)
(* QCheck window properties                                           *)
(* ------------------------------------------------------------------ *)

let arb_window =
  QCheck.make
    ~print:(fun w -> Format.asprintf "%a" TW.pp w)
    QCheck.Gen.(
      let* eat = float_range 0. 5. in
      let* width = float_range 0. 2. in
      let* s1 = float_range 0.01 0.5 in
      let* s2 = float_range 0.01 0.5 in
      return (TW.make ~eat ~lat:(eat +. width) ~slew_early:s1 ~slew_late:s2))

let window_qcheck =
  let open QCheck in
  [
    Test.make ~name:"merge is commutative" ~count:200 (pair arb_window arb_window)
      (fun (a, b) -> TW.equal (TW.merge a b) (TW.merge b a));
    Test.make ~name:"merge is associative" ~count:200
      (triple arb_window arb_window arb_window) (fun (a, b, c) ->
        TW.equal (TW.merge a (TW.merge b c)) (TW.merge (TW.merge a b) c));
    Test.make ~name:"merge widens" ~count:200 (pair arb_window arb_window)
      (fun (a, b) ->
        let m = TW.merge a b in
        TW.width m >= TW.width a -. 1e-9 || TW.width m >= TW.width b -. 1e-9);
    Test.make ~name:"merge contains both intervals" ~count:200
      (pair arb_window arb_window) (fun (a, b) ->
        let m = TW.merge a b in
        Interval.subset (TW.interval a) (TW.interval m)
        && Interval.subset (TW.interval b) (TW.interval m));
    Test.make ~name:"shift preserves width" ~count:200
      (pair (float_range (-3.) 3.) arb_window) (fun (d, w) ->
        Float.abs (TW.width (TW.shift d w) -. TW.width w) < 1e-9);
    Test.make ~name:"onset interval inside shifted window" ~count:200 arb_window
      (fun w ->
        let o = TW.onset_interval w in
        Interval.lo o <= w.TW.eat && Interval.hi o <= w.TW.lat);
  ]

let () =
  Alcotest.run "tka_sta"
    [
      ( "timing_window",
        [
          Alcotest.test_case "make" `Quick test_window_make;
          Alcotest.test_case "invalid" `Quick test_window_invalid;
          Alcotest.test_case "point" `Quick test_window_point;
          Alcotest.test_case "merge" `Quick test_window_merge;
          Alcotest.test_case "shift/extend" `Quick test_window_shift_extend;
          Alcotest.test_case "onset interval" `Quick test_window_onset_interval;
          Alcotest.test_case "latest transition" `Quick test_window_latest_transition;
        ] );
      ( "delay_calc",
        [
          Alcotest.test_case "net load" `Quick test_delay_calc_net_load;
          Alcotest.test_case "stage delay" `Quick test_stage_delay_includes_wire_rc;
          Alcotest.test_case "PI holding" `Quick test_holding_resistance_pi;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "chain sums" `Quick test_sta_chain_sums_delays;
          Alcotest.test_case "PI window" `Quick test_sta_pi_window;
          Alcotest.test_case "custom arrivals" `Quick test_sta_custom_input_arrival;
          Alcotest.test_case "extra_lat propagates" `Quick test_sta_extra_lat_propagates;
          Alcotest.test_case "negative extra" `Quick test_sta_negative_extra_rejected;
          Alcotest.test_case "window merge" `Quick test_sta_window_merge_at_join;
          Alcotest.test_case "worst output" `Quick test_worst_output;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "default period" `Quick test_constraints_default_period;
          Alcotest.test_case "required propagates" `Quick
            test_constraints_required_propagates;
          Alcotest.test_case "violations" `Quick test_constraints_violations;
          Alcotest.test_case "pinned output" `Quick test_constraints_pinned_output;
        ] );
      ( "report_timing",
        [
          Alcotest.test_case "basic" `Quick test_report_timing_basic;
          Alcotest.test_case "constraints" `Quick test_report_timing_with_constraints;
          Alcotest.test_case "noise column" `Quick test_report_timing_noise_column;
        ] );
      ("window properties", List.map QCheck_alcotest.to_alcotest window_qcheck);
      ( "sdf",
        [
          Alcotest.test_case "roundtrip" `Quick test_sdf_roundtrip;
          Alcotest.test_case "mismatch detection" `Quick test_sdf_check_detects_mismatch;
          Alcotest.test_case "noisy export" `Quick test_sdf_noisy_export;
          Alcotest.test_case "errors" `Quick test_sdf_errors;
        ] );
      ( "critical_path",
        [
          Alcotest.test_case "chain" `Quick test_critical_path_chain;
          Alcotest.test_case "long branch" `Quick
            test_critical_path_diamond_takes_long_branch;
          Alcotest.test_case "near critical" `Quick test_near_critical_enumerates_both;
          Alcotest.test_case "limit" `Quick test_near_critical_limit;
        ] );
    ]
