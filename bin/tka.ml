(* tka — command-line front end for the top-k aggressor analysis stack.

   Subcommands:
     tka gen      generate a benchmark circuit (netlist / SPEF / DOT)
     tka info     netlist statistics
     tka sta      static timing analysis and critical path
     tka noise    iterative crosstalk noise analysis
     tka topk     top-k aggressor addition / elimination sets
     tka liberty  dump the built-in cell library *)

open Cmdliner

module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Nf = Tka_circuit.Netlist_format
module Spef = Tka_circuit.Spef_lite
module Dot = Tka_circuit.Dot
module Stats = Tka_circuit.Circuit_stats
module Lib = Tka_cell.Default_lib
module Liberty = Tka_cell.Liberty_lite
module Analysis = Tka_sta.Analysis
module CP = Tka_sta.Critical_path
module Iterate = Tka_noise.Iterate
module B = Tka_layout.Benchmarks
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module Report = Tka_topk.Report
module Fmode = Tka_filter.Mode

module Log = Tka_obs.Log
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace

(* ------------------------------------------------------------------ *)
(* Observability flags (shared by every subcommand)                   *)
(* ------------------------------------------------------------------ *)

type obs = {
  ob_verbose : bool;
  ob_log_level : string option;
  ob_log_json : string option;
  ob_metrics_out : string option;
  ob_trace_out : string option;
  ob_jobs : int option;
}

let obs_term =
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Enable informational logging (level info).")
  in
  let log_level =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"SPEC"
          ~doc:
            "Log level directives: a level ($(b,error), $(b,warn), $(b,info), \
             $(b,debug), $(b,quiet)) and/or per-source overrides, e.g. \
             $(b,info,engine=debug). Overrides $(b,TKA_LOG) and \
             $(b,--verbose).")
  in
  let log_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-json" ] ~docv:"FILE"
          ~doc:"Also write every log event as NDJSON to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Enable the metrics registry and dump it as JSON to $(docv) when \
             the command finishes.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Enable span tracing and dump a Chrome-trace (trace_event) JSON \
             file to $(docv) when the command finishes (load it at \
             chrome://tracing or ui.perfetto.dev).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~env:(Cmd.Env.info "TKA_JOBS")
          ~doc:
            "Worker domains for the parallel engine sweep and brute-force \
             baseline (default: the machine's recommended domain count minus \
             one, at least 1). $(b,--jobs 1) forces the purely sequential \
             path; results are identical at any value.")
  in
  let make ob_verbose ob_log_level ob_log_json ob_metrics_out ob_trace_out
      ob_jobs =
    {
      ob_verbose;
      ob_log_level;
      ob_log_json;
      ob_metrics_out;
      ob_trace_out;
      ob_jobs;
    }
  in
  Term.(
    const make $ verbose $ log_level $ log_json $ metrics_out $ trace_out
    $ jobs)

(* Every dump flag ([--log-json], [--metrics-out], [--trace-out],
   [--json]) accepts [-] for stdout; real paths get their parent
   directories created up front so a dump-at-exit cannot fail on a
   fresh output tree. *)
let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let prepare_out path = if path <> "-" then mkdirs (Filename.dirname path)

(* dump a JSON document honouring the [-] convention *)
let emit_json path json =
  if path = "-" then print_endline (Tka_obs.Jsonx.to_string_pretty json)
  else begin
    prepare_out path;
    Tka_obs.Jsonx.write_file path json
  end

(* dump plain text honouring the same convention *)
let emit_text path text =
  if path = "-" then print_string text
  else begin
    prepare_out path;
    let oc = open_out path in
    output_string oc text;
    close_out oc
  end

(* Configure the observability stack, run [f], then dump the requested
   metrics/trace files (also on exceptions). *)
let with_obs o f =
  (match o.ob_jobs with
  | None -> ()
  | Some j when j >= 1 -> Tka_parallel.Pool.set_default_jobs j
  | Some j ->
    Printf.eprintf "tka: --jobs must be >= 1 (got %d)\n" j;
    exit 2);
  Log.set_level (Some (if o.ob_verbose then Log.Info else Log.Warn));
  Log.set_from_env ();
  (match o.ob_log_level with
  | None -> ()
  | Some spec -> (
    match Log.set_from_string spec with
    | Ok () -> ()
    | Error m ->
      Printf.eprintf "tka: bad --log-level: %s\n" m;
      exit 2));
  let open_or_die path =
    if path = "-" then stdout
    else begin
      prepare_out path;
      try open_out path
      with Sys_error m ->
        Printf.eprintf "tka: cannot open --log-json file: %s\n" m;
        exit 2
    end
  in
  let log_oc = Option.map open_or_die o.ob_log_json in
  let reporters =
    Log.text_reporter ()
    :: (match log_oc with Some oc -> [ Log.ndjson_reporter oc ] | None -> [])
  in
  Log.set_reporter (Log.multi_reporter reporters);
  if o.ob_metrics_out <> None then Metrics.set_enabled true;
  if o.ob_trace_out <> None then Trace.set_enabled true;
  let write_failed = ref false in
  let finally () =
    let write path json =
      try emit_json path (json ())
      with Sys_error m ->
        write_failed := true;
        Printf.eprintf "tka: cannot write %s: %s\n" path m
    in
    Option.iter
      (fun path -> write path (fun () -> Metrics.to_json ()))
      o.ob_metrics_out;
    Option.iter (fun path -> write path Trace.to_json) o.ob_trace_out;
    Option.iter (fun oc -> if oc != stdout then close_out oc) log_oc
  in
  let v = Fun.protect ~finally f in
  if !write_failed then exit 1;
  v

let liberty_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "liberty" ] ~docv:"FILE"
        ~doc:"Cell library in Liberty-lite format (default: built-in tka013).")

let lookup_of_liberty = function
  | None -> Lib.find
  | Some path ->
    let lib = Liberty.parse_file path in
    fun name -> Liberty.find lib name

let corner_arg =
  Arg.(
    value
    & opt (enum [ ("tt", Tka_cell.Corner.typical); ("ss", Tka_cell.Corner.slow);
                  ("ff", Tka_cell.Corner.fast) ])
        Tka_cell.Corner.typical
    & info [ "corner" ] ~docv:"CORNER"
        ~doc:"PVT corner to analyse at: $(b,tt) (default), $(b,ss), $(b,ff).")

let apply_corner corner nl =
  if corner.Tka_cell.Corner.corner_name = Tka_cell.Corner.typical.Tka_cell.Corner.corner_name
  then nl
  else
    Tka_circuit.Transform.map
      ~cell_of:(fun g -> Tka_cell.Corner.derate_cell corner g.N.cell)
      nl

let netlist_pos =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NETLIST" ~doc:"Input netlist in tka text format.")

module V = Tka_circuit.Verilog_lite

(* pick a parser by extension: .v structural Verilog, else tka text *)
let load ~liberty path =
  let lookup = lookup_of_liberty liberty in
  if Filename.check_suffix path ".v" then V.parse_file ~lookup path
  else Nf.parse_file ~lookup path

let handle_errors f =
  try f () with
  | Nf.Parse_error { line; message } ->
    Printf.eprintf "netlist parse error, line %d: %s\n" line message;
    exit 1
  | Liberty.Parse_error { line; message } ->
    Printf.eprintf "liberty parse error, line %d: %s\n" line message;
    exit 1
  | Spef.Parse_error { line; message } ->
    Printf.eprintf "spef parse error, line %d: %s\n" line message;
    exit 1
  | Tka_circuit.Sdf_lite.Parse_error { line; message } ->
    Printf.eprintf "sdf parse error, line %d: %s\n" line message;
    exit 1
  | N.Link_error { source; message } ->
    Printf.eprintf "%s link error: %s\n" source message;
    exit 1
  | Tka_circuit.Builder.Invalid m ->
    Printf.eprintf "invalid netlist: %s\n" m;
    exit 1
  | V.Parse_error { line; message } ->
    Printf.eprintf "verilog parse error, line %d: %s\n" line message;
    exit 1
  | Tka_obs.Jsonx.Parse_error m ->
    Printf.eprintf "json parse error: %s\n" m;
    exit 1
  | Sys_error m ->
    Printf.eprintf "error: %s\n" m;
    exit 1
  | Failure m ->
    Printf.eprintf "error: %s\n" m;
    exit 1

let run_obs obs f = with_obs obs (fun () -> handle_errors f)

(* ------------------------------------------------------------------ *)
(* gen                                                                *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let bench =
    Arg.(
      value & opt string "i1"
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:
            "Benchmark to generate: i1..i10, tiny, c17, or a table2x \
             scaling circuit (t2x-100k, t2x-1m, t2x-<nets>).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the netlist here (default stdout).")
  in
  let spef =
    Arg.(
      value & opt (some string) None
      & info [ "spef" ] ~docv:"FILE" ~doc:"Also dump parasitics in SPEF-lite format.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also dump a Graphviz rendering.")
  in
  let verilog =
    Arg.(
      value & flag
      & info [ "verilog" ] ~doc:"Emit structural Verilog instead of the tka text format.")
  in
  let run obs bench out spef dot verilog =
    run_obs obs (fun () ->
        let nl =
          if bench = "tiny" then B.tiny ()
          else if bench = "c17" then B.c17 ()
          else
            match B.by_name bench with
            | Some nl -> nl
            | None -> (
              match Tka_layout.Table2x.by_name bench with
              | Some nl -> nl
              | None -> failwith (Printf.sprintf "unknown benchmark %S" bench))
        in
        let render, write =
          if verilog then (V.print, V.write_file) else (Nf.print, Nf.write_file)
        in
        (match out with
        | Some path when path <> "-" ->
          prepare_out path;
          write nl path
        | Some _ | None -> print_string (render nl));
        Option.iter (fun path -> emit_text path (Spef.print nl)) spef;
        Option.iter (fun path -> emit_text path (Dot.render nl)) dot)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark circuit.")
    Term.(const run $ obs_term $ bench $ out $ spef $ dot $ verilog)

(* ------------------------------------------------------------------ *)
(* info                                                               *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run obs liberty path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        Format.printf "%a@." Stats.pp (Stats.compute nl))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print netlist statistics.")
    Term.(const run $ obs_term $ liberty_arg $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* sta                                                                *)
(* ------------------------------------------------------------------ *)

let sta_cmd =
  let paths =
    Arg.(
      value & opt int 1
      & info [ "paths" ] ~docv:"N" ~doc:"Report the N worst near-critical paths.")
  in
  let clock =
    Arg.(
      value & opt (some float) None
      & info [ "clock" ] ~docv:"NS"
          ~doc:"Clock period; when given, required times and slacks are reported.")
  in
  let run obs liberty corner n clock path =
    run_obs obs (fun () ->
        let nl = apply_corner corner (load ~liberty path) in
        let topo = Topo.create nl in
        let a = Analysis.run topo in
        Printf.printf "circuit delay (noiseless): %.4f ns\n" (Analysis.circuit_delay a);
        Printf.printf "worst output: %s\n"
          (N.net nl (Analysis.worst_output a)).N.net_name;
        let constraints =
          Option.map
            (fun period ->
              let c = Tka_sta.Constraints.create ~clock_period:period a in
              Printf.printf "clock period:  %.4f ns\n" period;
              Printf.printf "worst slack:   %.4f ns\n"
                (Tka_sta.Constraints.worst_slack c);
              Printf.printf "violations:    %d net(s)\n"
                (List.length (Tka_sta.Constraints.violations c));
              c)
            clock
        in
        let paths =
          if n <= 1 then [ CP.worst a ] else CP.near_critical ~limit:n a
        in
        List.iteri
          (fun i p ->
            Printf.printf "path %d:\n%s" (i + 1)
              (Tka_sta.Report_timing.path ?constraints a p))
          paths)
  in
  Cmd.v
    (Cmd.info "sta" ~doc:"Static timing analysis without noise.")
    Term.(
      const run $ obs_term $ liberty_arg $ corner_arg $ paths $ clock
      $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* noise                                                              *)
(* ------------------------------------------------------------------ *)

let noise_cmd =
  let worst =
    Arg.(
      value & opt int 5
      & info [ "worst" ] ~docv:"N" ~doc:"List the N nets with the most delay noise.")
  in
  let breakdown =
    Arg.(
      value & flag
      & info [ "breakdown" ]
          ~doc:"Also show the per-aggressor breakdown of the noisiest nets.")
  in
  let show_path =
    Arg.(
      value & flag
      & info [ "path" ] ~doc:"Show the noisy critical path with per-stage noise.")
  in
  let run obs liberty corner worst breakdown show_path path =
    run_obs obs (fun () ->
        let nl = apply_corner corner (load ~liberty path) in
        let topo = Topo.create nl in
        let r = Iterate.run topo in
        Printf.printf "noiseless delay: %.4f ns\n" (Iterate.noiseless_delay r);
        Printf.printf "noisy delay:     %.4f ns (+%.4f)\n" (Iterate.circuit_delay r)
          (Iterate.total_delay_noise r);
        Printf.printf "iterations:      %d (%sconverged)\n" r.Iterate.iterations
          (if r.Iterate.converged then "" else "NOT ");
        if show_path then
          print_string (Tka_noise.Path_noise.render nl (Tka_noise.Path_noise.worst_path r));
        if breakdown then
          List.iter
            (fun rep -> print_string (Tka_noise.Xtalk_report.render nl rep))
            (Tka_noise.Xtalk_report.worst_victims ~count:worst r)
        else begin
          let noisiest =
            List.init (N.num_nets nl) (fun v -> (v, Iterate.net_noise r v))
            |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
            |> List.filteri (fun i _ -> i < worst)
          in
          Printf.printf "noisiest nets:\n";
          List.iter
            (fun (v, d) ->
              if d > 0. then
                Printf.printf "  %-12s %.4f ns\n" (N.net nl v).N.net_name d)
            noisiest
        end)
  in
  Cmd.v
    (Cmd.info "noise" ~doc:"Iterative crosstalk delay-noise analysis.")
    Term.(
      const run $ obs_term $ liberty_arg $ corner_arg $ worst $ breakdown
      $ show_path $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* topk                                                               *)
(* ------------------------------------------------------------------ *)

(* Shared by topk and repair; the serve protocol accepts the same
   names ("none" also spelled "off"). *)
let filter_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("none", Fmode.Off); ("window", Fmode.Window); ("logic", Fmode.Logic);
           ])
        Fmode.Off
    & info [ "filter" ] ~docv:"FILTER"
        ~doc:
          "Aggressor candidate pre-filter: $(b,none) (bit-identical to no \
           filtering), $(b,window) (drop aggressors whose pulse provably \
           cannot reach the victim's sensitive interval, de-rate partial \
           overlaps), or $(b,logic) (window plus logical-correlation \
           pruning). See docs/filtering.md.")

let topk_cmd =
  let k =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Set cardinality bound.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("add", `Add); ("elim", `Elim) ]) `Add
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"$(b,add) for the addition set, $(b,elim) for the elimination set.")
  in
  let run obs liberty k mode filter path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        let topo = Topo.create nl in
        let ks = List.filter (fun i -> i <= k) [ 1; 2; 3; 5; 10; 20; 50 ] @ [ k ]
                 |> List.sort_uniq Int.compare in
        match mode with
        | `Add ->
          let t = Addition.compute ~filter ~k topo in
          print_string (Report.addition nl t ~ks)
        | `Elim ->
          let t = Elimination.compute ~filter ~k topo in
          print_string (Report.elimination nl t ~ks))
  in
  Cmd.v
    (Cmd.info "topk"
       ~doc:"Compute top-k aggressor addition or elimination sets.")
    Term.(
      const run $ obs_term $ liberty_arg $ k $ mode $ filter_arg $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* falseagg                                                           *)
(* ------------------------------------------------------------------ *)

let falseagg_cmd =
  let run obs liberty path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        let topo = Topo.create nl in
        let a = Analysis.run topo in
        let c =
          Tka_noise.False_aggressors.classify ~windows:(Analysis.window a) nl
        in
        let module Fa = Tka_noise.False_aggressors in
        Printf.printf
          "directed couplings: %d live, %d provably false (%.1f%% prunable)\n"
          (List.length c.Fa.fa_true) (List.length c.Fa.fa_false)
          (100. *. Fa.false_fraction c);
        List.iteri
          (fun i d ->
            if i < 10 then
              Printf.printf "  false: %s -> %s\n"
                (N.net nl d.Tka_noise.Coupled_noise.dc_aggressor).N.net_name
                (N.net nl d.Tka_noise.Coupled_noise.dc_victim).N.net_name)
          c.Fa.fa_false)
  in
  Cmd.v
    (Cmd.info "falseagg"
       ~doc:"Identify false aggressors (couplings that can never create delay noise).")
    Term.(const run $ obs_term $ liberty_arg $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* glitch                                                             *)
(* ------------------------------------------------------------------ *)

let glitch_cmd =
  let margin =
    Arg.(
      value & opt float Tka_noise.Glitch.default_margin
      & info [ "margin" ] ~docv:"VDD" ~doc:"DC noise margin in Vdd units.")
  in
  let run obs liberty margin path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        let topo = Topo.create nl in
        let v = Tka_noise.Glitch.check ~margin topo in
        Printf.printf "%d net(s) over the %.2f Vdd glitch margin\n" (List.length v)
          margin;
        List.iter
          (fun x -> Format.printf "  %a@." (Tka_noise.Glitch.pp_violation nl) x)
          v)
  in
  Cmd.v
    (Cmd.info "glitch" ~doc:"Functional (glitch) noise screening.")
    Term.(const run $ obs_term $ liberty_arg $ margin $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* kvalue                                                             *)
(* ------------------------------------------------------------------ *)

let kvalue_cmd =
  let coverage =
    Arg.(
      value & opt float 0.8
      & info [ "coverage" ] ~docv:"FRAC"
          ~doc:"Noise fraction the recommended k must capture/recover.")
  in
  let kmax =
    Arg.(value & opt int 30 & info [ "kmax" ] ~docv:"K" ~doc:"Largest k to explore.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("add", `Add); ("elim", `Elim) ]) `Add
      & info [ "mode" ] ~docv:"MODE" ~doc:"$(b,add) or $(b,elim).")
  in
  let run obs liberty coverage kmax mode path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        ignore nl;
        let topo = Topo.create nl in
        let module Kv = Tka_topk.K_value in
        let r =
          match mode with
          | `Add -> Kv.addition ~coverage ~kmax topo
          | `Elim -> Kv.elimination ~coverage ~kmax topo
        in
        Printf.printf "k,delay_ns,noise_fraction\n";
        List.iter
          (fun p ->
            Printf.printf "%d,%.4f,%.3f\n" p.Kv.kv_k p.Kv.kv_delay p.Kv.kv_fraction)
          r.Kv.kv_curve;
        (match r.Kv.kv_coverage_k with
        | Some k -> Printf.printf "smallest k reaching %.0f%% coverage: %d\n" (coverage *. 100.) k
        | None ->
          Printf.printf "no sampled k reaches %.0f%% coverage (try a larger --kmax)\n"
            (coverage *. 100.));
        Printf.printf "diminishing-returns knee: k = %d\n" r.Kv.kv_knee_k)
  in
  Cmd.v
    (Cmd.info "kvalue"
       ~doc:"Recommend a good k (coverage + knee of the top-k curve).")
    Term.(const run $ obs_term $ liberty_arg $ coverage $ kmax $ mode $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* sdf                                                                *)
(* ------------------------------------------------------------------ *)

let sdf_cmd =
  let noisy =
    Arg.(
      value & flag
      & info [ "noisy" ]
          ~doc:"Fold crosstalk delay noise into the exported arc delays.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write here (default stdout).")
  in
  let run obs liberty noisy out path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        let topo = Topo.create nl in
        let delay_of =
          if noisy then begin
            let r = Iterate.run topo in
            fun (g : N.gate) ->
              Tka_sta.Delay_calc.stage_delay nl g.N.gate_id
              +. Iterate.net_noise r g.N.fanout
          end
          else fun (g : N.gate) -> Tka_sta.Delay_calc.stage_delay nl g.N.gate_id
        in
        match out with
        | Some p -> emit_text p (Tka_circuit.Sdf_lite.print ~delay_of nl)
        | None -> print_string (Tka_circuit.Sdf_lite.print ~delay_of nl))
  in
  Cmd.v
    (Cmd.info "sdf" ~doc:"Export IOPATH delays in SDF-lite (optionally noisy).")
    Term.(const run $ obs_term $ liberty_arg $ noisy $ out $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* sensitivity                                                        *)
(* ------------------------------------------------------------------ *)

let sensitivity_cmd =
  let k = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Set cardinality.") in
  let trials =
    Arg.(value & opt int 10 & info [ "trials" ] ~docv:"N" ~doc:"Perturbed trials.")
  in
  let noise =
    Arg.(
      value & opt float 0.15
      & info [ "extraction-error" ] ~docv:"FRAC"
          ~doc:"Uniform coupling-cap perturbation bound (0.15 = ±15%).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("add", `Add); ("elim", `Elim) ]) `Elim
      & info [ "mode" ] ~docv:"MODE" ~doc:"$(b,add) or $(b,elim).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let run obs liberty k trials noise mode seed path =
    run_obs obs (fun () ->
        let nl = load ~liberty path in
        let rng = Tka_util.Rng.create seed in
        let module S = Tka_topk.Sensitivity in
        let r =
          match mode with
          | `Add -> S.addition ~trials ~noise_pct:noise ~rng ~k nl
          | `Elim -> S.elimination ~trials ~noise_pct:noise ~rng ~k nl
        in
        Printf.printf
          "top-%d set stability under ±%.0f%% extraction error (%d trials):\n" k
          (noise *. 100.) trials;
        Printf.printf "  Jaccard vs nominal: mean %.2f, min %.2f\n"
          r.S.sr_jaccard_mean r.S.sr_jaccard_min;
        let lo, hi = r.S.sr_delay_spread in
        Printf.printf "  evaluated delay spread: %.4f .. %.4f ns\n" lo hi;
        Printf.printf "  robust core (%d of %d couplings chosen in every trial):\n"
          (Tka_topk.Coupling_set.cardinality r.S.sr_always_chosen)
          k;
        List.iter print_endline
          (Tka_topk.Report.set_lines nl r.S.sr_always_chosen))
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Robustness of the top-k set to coupling-extraction error.")
    Term.(
      const run $ obs_term $ liberty_arg $ k $ trials $ noise $ mode $ seed
      $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* compare                                                            *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let before_pos =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"BEFORE" ~doc:"Netlist before the change.")
  in
  let after_pos =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"AFTER" ~doc:"Netlist after the change.")
  in
  let run obs liberty before after =
    run_obs obs (fun () ->
        let analyse path =
          let nl = load ~liberty path in
          let r = Iterate.run (Topo.create nl) in
          (nl, r)
        in
        let nl1, r1 = analyse before in
        let nl2, r2 = analyse after in
        Printf.printf "%-24s %12s %12s %10s\n" "" "before" "after" "delta";
        let row label f1 f2 =
          Printf.printf "%-24s %12.4f %12.4f %+10.4f\n" label f1 f2 (f2 -. f1)
        in
        row "noiseless delay (ns)" (Iterate.noiseless_delay r1)
          (Iterate.noiseless_delay r2);
        row "noisy delay (ns)" (Iterate.circuit_delay r1) (Iterate.circuit_delay r2);
        row "total delay noise (ns)" (Iterate.total_delay_noise r1)
          (Iterate.total_delay_noise r2);
        Printf.printf "%-24s %12d %12d %+10d\n" "coupling caps"
          (N.num_couplings nl1) (N.num_couplings nl2)
          (N.num_couplings nl2 - N.num_couplings nl1))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare timing and noise of two netlists (before/after a fix).")
    Term.(const run $ obs_term $ liberty_arg $ before_pos $ after_pos)

(* ------------------------------------------------------------------ *)
(* eco                                                                *)
(* ------------------------------------------------------------------ *)

let eco_cmd =
  let k =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Set cardinality bound.")
  in
  let fix_k =
    Arg.(
      value & opt int 1
      & info [ "fix-k" ] ~docv:"N"
          ~doc:"Cardinality of the elimination set applied as the mitigation edit.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Result-cache checkpoint (NDJSON): loaded before the analysis when \
             it exists (warm start) and saved right after the initial \
             analysis, so a second invocation on the same design reuses \
             every clean victim.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON ($(b,-) for stdout).")
  in
  let fixed_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the mitigated netlist here (tka text format).")
  in
  let run obs liberty k fix_k checkpoint json fixed_out path =
    run_obs obs (fun () ->
        if k < 1 then failwith "-k must be >= 1";
        if fix_k < 1 || fix_k > k then failwith "--fix-k must be in [1, k]";
        let nl = load ~liberty path in
        let report, fixed = Tka_incr.Eco.run ~k ~fix_k ?checkpoint nl in
        let r = report in
        Printf.printf "circuit %s: ECO loop, fix top-%d of k=%d\n"
          r.Tka_incr.Eco.eco_circuit fix_k k;
        (match r.Tka_incr.Eco.eco_set with
        | None -> Printf.printf "  no elimination candidates; nothing to fix\n"
        | Some s ->
          Printf.printf "  removing %d coupling(s):\n%s"
            (List.length r.Tka_incr.Eco.eco_edits)
            (Tka_topk.Coupling_set.describe nl s));
        Printf.printf "  noisy delay %.4f ns -> %.4f ns after fix\n"
          r.Tka_incr.Eco.eco_delay_noisy r.Tka_incr.Eco.eco_delay_fixed;
        Printf.printf
          "  re-verify: full %.3f s, incremental %.3f s (%.1fx speedup)\n"
          r.Tka_incr.Eco.eco_t_full_s r.Tka_incr.Eco.eco_t_incr_s
          r.Tka_incr.Eco.eco_speedup;
        Printf.printf "  warm re-verify (all hits): %.3f s (%.1fx)\n"
          r.Tka_incr.Eco.eco_t_warm_s r.Tka_incr.Eco.eco_speedup_warm;
        Printf.printf "  dirty nets %d, cache hits %d, misses %d\n"
          r.Tka_incr.Eco.eco_dirty_nets r.Tka_incr.Eco.eco_cache_hits
          r.Tka_incr.Eco.eco_cache_misses;
        if r.Tka_incr.Eco.eco_analysis_hits > 0 then
          Printf.printf "  warm start: initial analysis reused %d victims\n"
            r.Tka_incr.Eco.eco_analysis_hits;
        Printf.printf "  incremental results identical: %s\n"
          (if r.Tka_incr.Eco.eco_identical then "yes" else "NO");
        Printf.printf "  fix rule: %s\n"
          (Tka_incr.Eco.rule_name r.Tka_incr.Eco.eco_rule);
        Option.iter (fun path -> emit_json path (Tka_incr.Eco.report_json r)) json;
        Option.iter
          (fun path ->
            emit_text path
              (Nf.print (Tka_circuit.Topo.netlist fixed.Tka_topk.Elimination.topo)))
          fixed_out;
        if not r.Tka_incr.Eco.eco_identical then exit 1;
        (* a None/None outcome used to be indistinguishable from an
           empty fix — make "no fix set exists" a hard failure *)
        if r.Tka_incr.Eco.eco_rule = Tka_incr.Eco.Rule_none then exit 2)
  in
  Cmd.v
    (Cmd.info "eco"
       ~doc:
         "Run the full fix loop: top-k elimination analysis, apply the top set \
          as a shielding edit, and incrementally re-verify the improvement \
          (bit-identical to a from-scratch re-run, but cached).")
    Term.(
      const run $ obs_term $ liberty_arg $ k $ fix_k $ checkpoint $ json
      $ fixed_out $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* repair                                                             *)
(* ------------------------------------------------------------------ *)

let repair_cmd =
  let module Repair = Tka_incr.Repair in
  let k =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Set cardinality bound.")
  in
  let fix_k =
    Arg.(
      value & opt int 1
      & info [ "fix-k" ] ~docv:"N"
          ~doc:"Cardinality of the elimination set each candidate edit targets.")
  in
  let budget =
    Arg.(
      value & opt int 10
      & info [ "budget" ] ~docv:"N"
          ~doc:"Maximum individual edits to apply across the whole loop.")
  in
  let target_ns =
    Arg.(
      value
      & opt (some float) None
      & info [ "target-ns" ] ~docv:"NS"
          ~doc:
            "Absolute circuit-delay target in ns; the loop stops once the \
             all-aggressor delay is at or below it. Overrides $(b,--recover).")
  in
  let recover =
    Arg.(
      value & opt float 0.5
      & info [ "recover" ] ~docv:"FRAC"
          ~doc:
            "Fraction of the total delay noise to recover (in [0,1]) when no \
             $(b,--target-ns) is given: target = initial - FRAC * (initial - \
             noiseless).")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Run the full loop and report, but write neither the journal nor \
             the checkpoint file.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write the repair journal (NDJSON, one accepted/rejected trial \
             per line) here, incrementally as the loop runs.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Result-cache checkpoint (NDJSON): loaded when it exists (warm \
             start), re-saved after the initial analysis and after every \
             accepted edit, so an interrupted repair resumes warm.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON ($(b,-) for stdout).")
  in
  let fixed_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the repaired netlist here (tka text format).")
  in
  let run obs liberty k fix_k budget filter target_ns recover dry_run journal
      checkpoint json fixed_out path =
    run_obs obs (fun () ->
        if k < 1 then failwith "-k must be >= 1";
        if fix_k < 1 || fix_k > k then failwith "--fix-k must be in [1, k]";
        if budget < 0 then failwith "--budget must be >= 0";
        if not (recover >= 0. && recover <= 1.) then
          failwith "--recover must be in [0, 1]";
        let nl = load ~liberty path in
        let report, repaired, _elim =
          Repair.run ~k ~fix_k ~budget ~filter ?target_delay:target_ns ~recover
            ~dry_run ?journal ?checkpoint nl
        in
        let r = report in
        Printf.printf "circuit %s: repair loop, k=%d fix_k=%d budget=%d%s\n"
          r.Repair.rp_circuit k fix_k budget
          (if dry_run then " (dry run)" else "");
        Printf.printf "  target %.4f ns (noiseless %.4f, initial %.4f)\n"
          r.Repair.rp_target_delay r.Repair.rp_noiseless_delay
          r.Repair.rp_initial_delay;
        List.iter
          (fun e ->
            Printf.printf "  iter %d %-10s %-8s %2d edit(s)  %.4f -> %.4f ns\n"
              e.Repair.en_iter
              (Repair.move_name e.Repair.en_move)
              (if e.Repair.en_accepted then "ACCEPT" else "reject")
              (List.length e.Repair.en_edits)
              e.Repair.en_delay_before e.Repair.en_delay_after)
          r.Repair.rp_journal;
        Printf.printf
          "  outcome %s: %d edit(s) in %d iteration(s), %d rejected\n"
          (Repair.outcome_name r.Repair.rp_outcome)
          r.Repair.rp_edits_applied r.Repair.rp_iterations r.Repair.rp_rejected;
        Printf.printf "  delay %.4f -> %.4f ns (%.1f ps recovered)\n"
          r.Repair.rp_initial_delay r.Repair.rp_final_delay
          ((r.Repair.rp_initial_delay -. r.Repair.rp_final_delay) *. 1000.);
        Printf.printf "  final state identical to scratch re-analysis: %s\n"
          (if r.Repair.rp_identical then "yes" else "NO");
        Option.iter (fun p -> emit_json p (Repair.report_json r)) json;
        Option.iter (fun p -> emit_text p (Nf.print repaired)) fixed_out;
        if not r.Repair.rp_identical then exit 1;
        if r.Repair.rp_outcome <> Repair.Target_met then exit 4)
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Autonomous ECO repair: iterate top-k elimination, synthesize \
          shielding/spacing/driver-strengthening candidate edits, apply the \
          best through the incremental analyzer (rolling back candidates \
          that regress the delay), until a delay target is met or the edit \
          budget is exhausted. Exits 0 only when the target is met and the \
          final state is bit-identical to a scratch re-analysis.")
    Term.(
      const run $ obs_term $ liberty_arg $ k $ fix_k $ budget $ filter_arg
      $ target_ns $ recover $ dry_run $ journal $ checkpoint $ json
      $ fixed_out $ netlist_pos)

(* ------------------------------------------------------------------ *)
(* verify                                                             *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let module Driver = Tka_verify.Driver in
  let module Repro = Tka_verify.Repro in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master RNG seed.")
  in
  let trials =
    Arg.(
      value & opt int 500
      & info [ "trials" ] ~docv:"N" ~doc:"Number of trials to run.")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-s" ] ~docv:"SECONDS"
          ~doc:"Stop starting new trials after this much wall time.")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Skip delta-debug minimization of failing instances.")
  in
  let out =
    Arg.(
      value & opt string "tka-reproducers.ndjson"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Where to dump NDJSON reproducers when defects are found (the \
             file is only written on failure).")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Instead of running new trials, re-execute every reproducer in \
             this NDJSON file (as written by a failing run).")
  in
  let run_replay path =
    match Repro.load path with
    | Error m -> failwith m
    | Ok rs ->
      let still = ref 0 in
      List.iteri
        (fun i r ->
          let tag = Printf.sprintf "[%d] %s" (i + 1) r.Repro.rp_invariant in
          match Driver.replay r with
          | Driver.Passed -> Printf.printf "%s: now passes\n" tag
          | Driver.Skipped why -> Printf.printf "%s: skipped (%s)\n" tag why
          | Driver.Reproduced detail ->
            incr still;
            Printf.printf "%s: STILL FAILING: %s\n" tag detail)
        rs;
      Printf.printf "%d reproducer(s), %d still failing\n" (List.length rs)
        !still;
      if !still > 0 then exit 1
  in
  let run obs seed trials budget no_minimize out replay =
    run_obs obs (fun () ->
        match replay with
        | Some path -> run_replay path
        | None ->
          let s =
            Driver.run ~seed ~trials ?budget_s:budget
              ~minimize:(not no_minimize) ()
          in
          Printf.printf
            "verify: %d trial(s) in %.1f s (%d oracle, %d fuzz, %d skipped), seed %d\n"
            s.Driver.vs_trials s.Driver.vs_elapsed_s s.Driver.vs_oracle
            s.Driver.vs_fuzz s.Driver.vs_skipped seed;
          (match s.Driver.vs_failures with
          | [] -> Printf.printf "no invariant violations found\n"
          | failures ->
            prepare_out out;
            Repro.save out failures;
            Printf.printf "%d DEFECT(S) FOUND — reproducers written to %s\n"
              (List.length failures) out;
            List.iter
              (fun r ->
                Printf.printf "  trial %d %s: %s\n" r.Repro.rp_trial
                  r.Repro.rp_invariant r.Repro.rp_detail)
              failures;
            exit 1))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Differential self-verification: random circuits through the \
          brute-force, duality, determinism and incremental oracles, plus \
          mutation fuzzing of the text-format parsers.")
    Term.(
      const run $ obs_term $ seed $ trials $ budget $ no_minimize $ out
      $ replay)

(* ------------------------------------------------------------------ *)
(* profile                                                            *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let module P = Tka_prof.Profile in
  let trace_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Analyse this Chrome-trace dump (as written by \
             $(b,--trace-out)) instead of running an analysis inline.")
  in
  let k =
    Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Set cardinality bound.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("add", `Add); ("elim", `Elim) ]) `Elim
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Analysis to profile inline: $(b,add) or $(b,elim) (default).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Rows in the slowest-victims and allocation tables.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON ($(b,-) for stdout).")
  in
  let netlist_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"NETLIST"
          ~doc:"Netlist to analyse inline (omit when using $(b,--trace)).")
  in
  let run obs liberty trace_in k mode top json path =
    run_obs obs (fun () ->
        let spans =
          match (trace_in, path) with
          | Some f, _ -> P.of_trace_file f
          | None, Some nlpath ->
            let nl = load ~liberty nlpath in
            let topo = Topo.create nl in
            (* record the analysis whether or not --trace-out is given;
               an outer dump still sees these spans *)
            Trace.set_enabled true;
            (match mode with
            | `Add -> ignore (Addition.compute ~k topo)
            | `Elim -> ignore (Elimination.compute ~k topo));
            Trace.spans ()
          | None, None ->
            failwith "profile needs a NETLIST to run, or --trace FILE to ingest"
        in
        let r = P.analyze ~top spans in
        (match json with
        | Some path -> emit_json path (P.to_json r)
        | None -> ());
        if json <> Some "-" then print_string (P.render r))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Trace analytics: self/total time per span, slowest victims with \
          prune attribution, and GC-allocation hotspots — from a trace dump \
          or an inline run.")
    Term.(
      const run $ obs_term $ liberty_arg $ trace_in $ k $ mode $ top $ json
      $ netlist_opt)

(* ------------------------------------------------------------------ *)
(* bench-diff                                                         *)
(* ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let module Bd = Tka_prof.Bench_diff in
  let base_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASE"
          ~doc:
            "Baseline bench file: a $(b,BENCH_topk.json), or a \
             $(b,BENCH_history.ndjson) whose last record is used.")
  in
  let new_pos =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Bench file to compare against the baseline.")
  in
  let threshold =
    Arg.(
      value
      & opt float 0.20
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Relative regression threshold (0.20 = flag changes beyond \
             ±20%).")
  in
  let min_seconds =
    Arg.(
      value
      & opt float Bd.default_min_seconds
      & info [ "min-seconds" ] ~docv:"S"
          ~doc:
            "Noise floor: timing metrics below this in both files are \
             skipped.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the comparison as JSON ($(b,-) for stdout).")
  in
  let run obs base next threshold min_seconds json =
    run_obs obs (fun () ->
        if not (threshold > 0.) then failwith "--threshold must be > 0";
        let r =
          Bd.compare_docs ~threshold ~min_seconds (Bd.load_file base)
            (Bd.load_file next)
        in
        (match json with
        | Some path -> emit_json path (Bd.to_json r)
        | None -> ());
        if json <> Some "-" then print_string (Bd.render r);
        if Bd.has_regressions r then exit 1)
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two benchmark result files and fail (exit 1) on \
          performance regressions beyond a noise threshold.")
    Term.(
      const run $ obs_term $ base_pos $ new_pos $ threshold $ min_seconds
      $ json)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

module Server = Tka_serve.Server
module Client = Tka_serve.Client
module J = Tka_obs.Jsonx

let default_socket = "/tmp/tka-serve.sock"

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default $(b,/tmp/tka-serve.sock)).")

let serve_cmd =
  let tcp =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Also listen on 127.0.0.1:$(docv) (the Unix socket stays on).")
  in
  let max_inflight =
    Arg.(
      value & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Analysis requests executing at once (default: the domain-pool \
             jobs count).")
  in
  let max_queue =
    Arg.(
      value & opt (some int) None
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Analysis requests allowed to wait for a slot before new \
             arrivals get an $(b,overloaded) reply (default 32).")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-s" ] ~docv:"S"
          ~doc:
            "Queue-wait deadline: a request still queued after $(docv) \
             seconds gets a $(b,timeout) reply (default 30).")
  in
  let max_designs =
    Arg.(
      value & opt (some int) None
      & info [ "max-designs" ] ~docv:"N"
          ~doc:
            "Shared victim caches kept across sessions; least recently \
             attached designs are evicted beyond this (default 64).")
  in
  let default_k =
    Arg.(
      value & opt int 10
      & info [ "k" ] ~docv:"K"
          ~doc:"Default set-cardinality bound for sessions that load without one.")
  in
  let run obs liberty socket tcp max_inflight max_queue deadline_s max_designs
      default_k =
    run_obs obs (fun () ->
        let lookup = lookup_of_liberty liberty in
        (* a daemon always keeps its metrics registry live: the
           [metrics] RPC is its observability surface whether or not a
           [--metrics-out] dump was requested (span tracing stays
           opt-in via [--trace-out]: spans accumulate unboundedly in a
           long-lived process) *)
        Metrics.set_enabled true;
        let srv =
          Server.create ?max_inflight ?max_queue ?deadline_s ?max_designs
            ~default_k ~lookup ()
        in
        (* a client vanishing mid-reply must not kill the daemon *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let request_stop _ = Server.stop srv in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
        let listeners =
          Server.listen_unix socket
          :: (match tcp with Some port -> [ Server.listen_tcp ~port ] | None -> [])
        in
        Printf.printf "tka serve: listening on %s%s (pid %d)\n%!" socket
          (match tcp with
          | Some port -> Printf.sprintf " and 127.0.0.1:%d" port
          | None -> "")
          (Unix.getpid ());
        Server.serve srv ~listeners;
        Printf.printf "tka serve: stopped\n%!")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived analysis daemon: NDJSON-RPC over a Unix-domain \
          (and optionally TCP) socket, concurrent sessions multiplexed onto \
          the shared domain pool, cross-session victim-cache sharing by \
          design fingerprint, and bounded admission control.")
    Term.(
      const run $ obs_term $ liberty_arg $ socket_arg $ tcp $ max_inflight
      $ max_queue $ deadline $ max_designs $ default_k)

(* ------------------------------------------------------------------ *)
(* client                                                             *)
(* ------------------------------------------------------------------ *)

type client_action =
  | A_ping
  | A_info
  | A_stats
  | A_metrics
  | A_shutdown
  | A_analyze of string option  (* mode: "add" | "elim" *)
  | A_eco of int  (* fix_k *)
  | A_repair of int  (* edit budget *)
  | A_whatif of int list  (* couplings to remove *)

let parse_action s =
  let fail () =
    failwith
      (Printf.sprintf
         "unknown action %S (expected ping, info, stats, metrics, shutdown, \
          analyze[:add|:elim], eco[:FIXK], repair[:BUDGET] or \
          whatif:remove=ID[,ID...])"
         s)
  in
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "ping" -> A_ping
    | "info" -> A_info
    | "stats" -> A_stats
    | "metrics" -> A_metrics
    | "shutdown" -> A_shutdown
    | "analyze" -> A_analyze None
    | "eco" -> A_eco 1
    | "repair" -> A_repair 10
    | _ -> fail ())
  | Some i -> (
    let verb = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match verb with
    | "analyze" when arg = "add" || arg = "elim" -> A_analyze (Some arg)
    | "eco" -> (
      match int_of_string_opt arg with Some n -> A_eco n | None -> fail ())
    | "repair" -> (
      match int_of_string_opt arg with Some n -> A_repair n | None -> fail ())
    | "whatif" -> (
      match String.split_on_char '=' arg with
      | [ "remove"; ids ] ->
        A_whatif
          (List.map
             (fun x ->
               match int_of_string_opt (String.trim x) with
               | Some c -> c
               | None -> fail ())
             (String.split_on_char ',' ids))
      | _ -> fail ())
    | _ -> fail ())

let client_cmd =
  let tcp =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Connect to 127.0.0.1:$(docv) instead of the Unix socket.")
  in
  let design =
    Arg.(
      value & opt (some file) None
      & info [ "design" ] ~docv:"NETLIST"
          ~doc:"Load this netlist into the session before running the actions.")
  in
  let k =
    Arg.(
      value & opt (some int) None
      & info [ "k" ] ~docv:"K" ~doc:"Set cardinality bound for $(b,--design).")
  in
  let filter =
    Arg.(
      value & opt (some string) None
      & info [ "filter" ] ~docv:"FILTER"
          ~doc:
            "Aggressor pre-filter for $(b,analyze), $(b,whatif) and \
             $(b,repair) actions ($(b,none), $(b,window) or $(b,logic)). \
             Sent verbatim; the server rejects unknown names with \
             $(b,bad_request).")
  in
  let actions =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ACTION"
          ~doc:
            "Actions to run in order over one connection (one session): \
             $(b,ping), $(b,info), $(b,stats), $(b,metrics), $(b,shutdown), \
             $(b,analyze)[:add|:elim], $(b,eco)[:FIXK], \
             $(b,whatif:remove=ID,ID...).")
  in
  let run obs socket tcp design k filter actions =
    run_obs obs (fun () ->
        let actions = List.map parse_action actions in
        let filter_param =
          match filter with
          | None -> []
          | Some f -> [ ("filter", J.Str f) ]
        in
        if actions = [] && design = None then
          failwith "nothing to do: give at least one ACTION (or --design)";
        let c =
          match tcp with
          | Some port -> Client.connect_tcp ~host:"127.0.0.1" ~port
          | None -> Client.connect_unix socket
        in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let call meth params =
              match Client.call c ~meth ~params () with
              | Ok result -> result
              | Error (code, msg) ->
                failwith
                  (Printf.sprintf "%s failed (%s): %s" meth
                     (Tka_serve.Proto.code_to_string code)
                     msg)
            in
            (match design with
            | None -> ()
            | Some path ->
              let body =
                In_channel.with_open_bin path In_channel.input_all
              in
              let params =
                ("netlist", J.Str body)
                :: (match k with Some k -> [ ("k", J.Int k) ] | None -> [])
              in
              print_endline (J.to_string_pretty (call "load" (J.Obj params))));
            List.iter
              (fun action ->
                let meth, params =
                  match action with
                  | A_ping -> ("ping", J.Obj [])
                  | A_info -> ("info", J.Obj [])
                  | A_stats -> ("stats", J.Obj [])
                  | A_metrics -> ("metrics", J.Obj [])
                  | A_shutdown -> ("shutdown", J.Obj [])
                  | A_analyze mode ->
                    ( "analyze",
                      J.Obj
                        ((match mode with
                         | Some m -> [ ("mode", J.Str m) ]
                         | None -> [])
                        @ filter_param) )
                  | A_eco fix_k -> ("eco", J.Obj [ ("fix_k", J.Int fix_k) ])
                  | A_repair budget ->
                    ("repair", J.Obj (("budget", J.Int budget) :: filter_param))
                  | A_whatif couplings ->
                    ( "whatif",
                      J.Obj
                        (( "edits",
                           J.List
                             (List.map
                                (fun cid ->
                                  J.Obj
                                    [
                                      ("op", J.Str "remove_coupling");
                                      ("coupling", J.Int cid);
                                    ])
                                couplings) )
                        :: filter_param) )
                in
                let result = call meth params in
                match (action, J.member "body" result) with
                (* metrics: print the Prometheus exposition itself *)
                | A_metrics, Some (J.Str body) -> print_string body
                | _ -> print_endline (J.to_string_pretty result))
              actions))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,tka serve) daemon: load a design and run \
          analyze / what-if / ECO / metrics actions over one session.")
    Term.(
      const run $ obs_term $ socket_arg $ tcp $ design $ k $ filter $ actions)

(* ------------------------------------------------------------------ *)
(* liberty                                                            *)
(* ------------------------------------------------------------------ *)

let liberty_cmd =
  let run () = print_string (Lib.to_liberty ()) in
  Cmd.v
    (Cmd.info "liberty" ~doc:"Dump the built-in tka013 cell library.")
    Term.(const run $ const ())

let () =
  let doc = "top-k aggressor sets in crosstalk delay noise analysis" in
  let info = Cmd.info "tka" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; info_cmd; sta_cmd; noise_cmd; topk_cmd; glitch_cmd;
            falseagg_cmd; kvalue_cmd; sensitivity_cmd; compare_cmd; sdf_cmd;
            eco_cmd; repair_cmd; verify_cmd; profile_cmd; bench_diff_cmd;
            serve_cmd;
            client_cmd; liberty_cmd;
          ]))
